(** mario — the LiteNES-substitute platformer, in the paper's three
    variants (§6.3):

    - [noinput] (Prototype 3): one task, direct rendering, no events; the
      game autoplays (title-screen coin flash, then the bot runs the level).
    - [proc] (Prototype 4): the main loop reads a shared pipe fed by two
      forked processes — a tick producer and a blocking /dev/events reader
      (§4.4 "IPC for Mario's event loop").
    - [sdl] (Prototype 5): threads + the window manager, with newlib-class
      library overhead.

    The engine does real per-frame work (tile background, sprites, physics,
    camera) at the NES's 256×240; on top of that each frame charges the
    emulation cost of one LiteNES frame (6502 + PPU), with per-variant
    constants reflecting the paper's attribution of the FPS differences to
    the user-library stacks. *)


open User

let screen_w = 256
let screen_h = 240
let tile = 16
let level_cols = 256
let ground_row = 12

(* LiteNES frame emulation cost (6502 CPU + PPU scanlines) per variant:
   the minimal P3 library, the tuned P4 library, and newlib+minisdl. Table
   4's mario FPS ordering (proc > noinput > sdl) follows from these plus
   the render-path differences. *)
let emu_cycles = function
  | `Noinput -> 8_750_000
  | `Proc -> 8_350_000
  | `Sdl -> 13_600_000

(* ---- level ---- *)

type cell = Sky | Ground | Brick | Pipe | Coin

let level =
  Array.init level_cols (fun col ->
      Array.init 15 (fun row ->
          let gap = col mod 37 >= 35 in
          let pipe_here = col mod 23 = 15 in
          let brick_row = row = 8 && col mod 11 < 3 in
          let coin_here = row = 7 && col mod 13 = 6 in
          if row >= ground_row then if gap then Sky else Ground
          else if pipe_here && row >= ground_row - 2 then Pipe
          else if brick_row then Brick
          else if coin_here then Coin
          else Sky))

let cell_at ~col ~row =
  if col < 0 || col >= level_cols || row < 0 || row >= 15 then Sky
  else level.(col).(row)

let solid = function Ground | Brick | Pipe -> true | Sky | Coin -> false

(* ---- game state ---- *)

type state = {
  mutable px : float;  (** player x in pixels (world) *)
  mutable py : float;
  mutable vx : float;
  mutable vy : float;
  mutable on_ground : bool;
  mutable camera : int;
  mutable coins : int;
  mutable frame : int;
  mutable title : bool;  (** title screen with the flashing coin *)
  collected : (int * int, unit) Hashtbl.t;
  goombas : (float ref * float ref) array;  (** x, direction *)
}

let fresh_state () =
  {
    px = 32.0;
    py = float_of_int ((ground_row * tile) - tile);
    vx = 0.0;
    vy = 0.0;
    on_ground = true;
    camera = 0;
    coins = 0;
    frame = 0;
    title = true;
    collected = Hashtbl.create 32;
    goombas =
      Array.init 8 (fun i -> (ref (float_of_int (300 + (i * 350))), ref (-1.0)));
  }

type input = { left : bool; right : bool; jump : bool }

let no_input = { left = false; right = false; jump = false }

(* The autoplay bot: run right, jump at obstacles and gaps. *)
let bot st =
  let col = int_of_float st.px / tile + 1 in
  let ahead_solid =
    solid (cell_at ~col:(col + 1) ~row:(ground_row - 1))
    || solid (cell_at ~col:(col + 1) ~row:(ground_row - 2))
  in
  let gap_ahead = cell_at ~col:(col + 1) ~row:ground_row = Sky in
  { left = false; right = true; jump = (ahead_solid || gap_ahead) && st.on_ground }

let step st input =
  st.frame <- st.frame + 1;
  if st.title then begin
    (* flashing coin on the title screen; autoplay transition after 120
       frames, or any input starts the game *)
    if st.frame > 120 || input.right || input.jump then st.title <- false
  end
  else begin
    let accel = 0.25 in
    if input.right then st.vx <- Float.min 2.2 (st.vx +. accel)
    else if input.left then st.vx <- Float.max (-2.2) (st.vx -. accel)
    else st.vx <- st.vx *. 0.85;
    if input.jump && st.on_ground then begin
      st.vy <- -5.4;
      st.on_ground <- false
    end;
    st.vy <- Float.min 6.0 (st.vy +. 0.3);
    st.px <- st.px +. st.vx;
    st.py <- st.py +. st.vy;
    (* ground collision *)
    let col = int_of_float (st.px +. 8.0) / tile in
    let foot_row = int_of_float (st.py +. 16.0) / tile in
    if st.vy >= 0.0 && solid (cell_at ~col ~row:foot_row) then begin
      st.py <- float_of_int ((foot_row * tile) - tile);
      st.vy <- 0.0;
      st.on_ground <- true
    end
    else st.on_ground <- false;
    (* fell into a gap: respawn *)
    if st.py > 260.0 then begin
      st.px <- 32.0;
      st.py <- float_of_int ((ground_row * tile) - tile);
      st.vy <- 0.0
    end;
    (* coin pickup *)
    let row = int_of_float (st.py +. 8.0) / tile in
    if cell_at ~col ~row = Coin && not (Hashtbl.mem st.collected (col, row))
    then begin
      Hashtbl.replace st.collected (col, row) ();
      st.coins <- st.coins + 1
    end;
    (* wrap at level end *)
    if st.px > float_of_int ((level_cols - 2) * tile) then st.px <- 32.0;
    (* goombas patrol *)
    Array.iter
      (fun (x, dir) ->
        x := !x +. (!dir *. 0.8);
        let c = int_of_float !x / tile in
        if not (solid (cell_at ~col:c ~row:ground_row)) then dir := -. !dir)
      st.goombas;
    st.camera <- max 0 (int_of_float st.px - 100)
  end

(* ---- rendering ---- *)

let sky_color = Gfx.rgb 92 148 252
let ground_color = Gfx.rgb 172 124 0
let brick_color = Gfx.rgb 200 76 12
let pipe_color = Gfx.rgb 0 168 0
let coin_color = Gfx.rgb 252 188 60
let mario_color = Gfx.rgb 216 40 0
let goomba_color = Gfx.rgb 136 88 24

let draw st gfx =
  Gfx.fill gfx sky_color;
  if st.title then begin
    Gfx.text gfx ~x:70 ~y:80 ~color:0xffffff "SUPER MARIO";
    Gfx.text gfx ~x:76 ~y:100 ~color:0xc0c0c0 "LITE NES";
    (* the flashing coin *)
    if st.frame / 15 mod 2 = 0 then
      Gfx.fill_rect gfx ~x:124 ~y:130 ~w:8 ~h:12 coin_color
  end
  else begin
    let first_col = st.camera / tile in
    for screen_col = 0 to (screen_w / tile) + 1 do
      let col = first_col + screen_col in
      for row = 0 to 14 do
        let x = (col * tile) - st.camera and y = row * tile in
        match cell_at ~col ~row with
        | Sky -> ()
        | Ground ->
            Gfx.fill_rect gfx ~x ~y ~w:tile ~h:tile ground_color;
            Gfx.fill_rect gfx ~x ~y ~w:tile ~h:2 (Gfx.rgb 228 184 96)
        | Brick ->
            Gfx.fill_rect gfx ~x ~y ~w:tile ~h:tile brick_color;
            Gfx.fill_rect gfx ~x ~y:(y + 7) ~w:tile ~h:1 0x000000
        | Pipe -> Gfx.fill_rect gfx ~x ~y ~w:tile ~h:tile pipe_color
        | Coin ->
            if not (Hashtbl.mem st.collected (col, row)) then
              Gfx.fill_rect gfx ~x:(x + 4) ~y:(y + 2) ~w:8 ~h:12 coin_color
      done
    done;
    (* goombas *)
    Array.iter
      (fun (gx, _) ->
        let x = int_of_float !gx - st.camera in
        if x > -16 && x < screen_w then
          Gfx.fill_rect gfx ~x ~y:((ground_row * tile) - 14) ~w:14 ~h:14
            goomba_color)
      st.goombas;
    (* mario *)
    Gfx.fill_rect gfx
      ~x:(int_of_float st.px - st.camera)
      ~y:(int_of_float st.py) ~w:14 ~h:16 mario_color;
    Gfx.text gfx ~x:6 ~y:4 ~color:0xffffff
      (Printf.sprintf "COINS %d" st.coins)
  end

(* ---- input decoding shared by the variants ---- *)

let input_of_events events held =
  List.iter
    (fun ev ->
      match ev.Uevents.key with
      | Uevents.Left -> held := { !held with left = ev.Uevents.pressed }
      | Uevents.Right -> held := { !held with right = ev.Uevents.pressed }
      | Uevents.Space | Uevents.Up | Uevents.Char 'a' ->
          held := { !held with jump = ev.Uevents.pressed }
      | Uevents.Down | Uevents.Enter | Uevents.Escape | Uevents.Tab
      | Uevents.Char _ | Uevents.Other _ ->
          ())
    events

(* ---- variants ---- *)

let run_noinput env frames =
  ignore (Usys.sbrk (3 * 1024 * 1024)) (* engine + framebuffer staging *);
  match Gfx.direct env with
  | Error e -> e
  | Ok gfx ->
      let st = fresh_state () in
      while frames = 0 || st.frame < frames do
        step st (if st.title then no_input else bot st);
        Usys.burn (emu_cycles `Noinput);
        draw st gfx;
        Gfx.present gfx
      done;
      0

(* Prototype 4: two helper processes feed a pipe; the main loop blocks on
   it. A 'T' byte is a tick, an 'E' byte is followed by a raw event. *)
let run_proc env frames cap_ms =
  match Usys.pipe () with
  | Error e -> e
  | Ok (rfd, wfd) ->
      (* tick producer *)
      let ticker =
        Usys.fork (fun () ->
            let rec loop () =
              if cap_ms > 0 then ignore (Usys.sleep cap_ms)
              else Usys.burn 4_000;
              let n = Usys.write wfd (Bytes.of_string "T") in
              if n >= 0 then loop () else 0
            in
            loop ())
      in
      (* blocking event reader *)
      let reader =
        Usys.fork (fun () ->
            let fd = Usys.open_ "/dev/events" Core.Abi.o_rdonly in
            if fd < 0 then 0
            else begin
              let rec loop () =
                match Usys.read fd Core.Kbd.event_bytes with
                | Ok ev when Bytes.length ev > 0 ->
                    let msg = Bytes.create (1 + Bytes.length ev) in
                    Bytes.set msg 0 'E';
                    Bytes.blit ev 0 msg 1 (Bytes.length ev);
                    let n = Usys.write wfd msg in
                    if n >= 0 then loop () else 0
                | Ok _ | Error _ -> 0
              in
              loop ()
            end)
      in
      let result =
        match Gfx.direct env with
        | Error e -> e
        | Ok gfx ->
            let st = fresh_state () in
            let held = ref no_input in
            while frames = 0 || st.frame < frames do
              (match Usys.read rfd 64 with
              | Ok msg ->
                  let i = ref 0 in
                  let ticked = ref false in
                  while !i < Bytes.length msg do
                    match Bytes.get msg !i with
                    | 'T' ->
                        ticked := true;
                        incr i
                    | 'E' when !i + Core.Kbd.event_bytes < Bytes.length msg + 1 ->
                        let ev =
                          Uevents.decode_bytes
                            (Bytes.sub msg (!i + 1) Core.Kbd.event_bytes)
                        in
                        input_of_events ev held;
                        i := !i + 1 + Core.Kbd.event_bytes
                    | _ -> incr i
                  done;
                  if !ticked then begin
                    step st
                      (if st.title then { !held with jump = !held.jump }
                       else if !held.left || !held.right || !held.jump then !held
                       else bot st);
                    Usys.burn (emu_cycles `Proc);
                    draw st gfx;
                    Gfx.present gfx
                  end
              | Error _ -> st.frame <- max st.frame (frames - 1))
            done;
            0
      in
      ignore (Usys.kill ticker);
      ignore (Usys.kill reader);
      ignore (Usys.wait ());
      ignore (Usys.wait ());
      result

let run_sdl env frames cap_ms =
  ignore (Usys.sbrk (11 * 1024 * 1024)) (* newlib heap + minisdl surfaces *);
  match Minisdl.init env (Minisdl.Window { w = screen_w; h = screen_h; x = 40; y = 40; alpha = 255 }) with
  | Error e -> e
  | Ok sdl ->
      let gfx = Minisdl.surface sdl in
      let st = fresh_state () in
      let held = ref no_input in
      while frames = 0 || st.frame < frames do
        input_of_events (Minisdl.poll_events sdl) held;
        step st
          (if st.title then !held
           else if !held.left || !held.right || !held.jump then !held
           else bot st);
        Usys.burn (emu_cycles `Sdl);
        draw st gfx;
        Minisdl.present sdl;
        if cap_ms > 0 then Minisdl.delay cap_ms
      done;
      Minisdl.quit sdl;
      0

(* argv: mario [noinput|proc|sdl] [frames] [cap_ms] *)
let main env argv =
  Usys.in_frame "mario_main" (fun () ->
      let variant = match argv with _ :: v :: _ -> v | _ -> "noinput" in
      let frames = match argv with _ :: _ :: f :: _ -> int_of_string f | _ -> 0 in
      let cap_ms = match argv with _ :: _ :: _ :: c :: _ -> int_of_string c | _ -> 0 in
      match variant with
      | "proc" -> run_proc env frames cap_ms
      | "sdl" -> run_sdl env frames cap_ms
      | _ -> run_noinput env frames)
