(** donut — a1k0n's spinning torus, the motivating app of Prototypes 1–2.

    The real math: parametric torus points, two rotation angles advanced
    per frame, perspective projection, z-buffer, Lambertian luminance. Two
    renderers, matching the paper: textual characters (UART output) and
    pixels (framebuffer). Each task renders at its own pace, so multiple
    instances visualize scheduling — Prototype 2's whole point. *)


open User

let cycles_per_point = 36 (* ~9 fp ops + trig table lookups per point *)

(* Render one frame of the torus into a z-buffered luminance grid. *)
let render_luminance ~cols ~rows ~a ~b =
  let zbuf = Array.make (cols * rows) 0.0 in
  let lum = Array.make (cols * rows) (-1.0) in
  let sin_a = sin a and cos_a = cos a in
  let sin_b = sin b and cos_b = cos b in
  let theta = ref 0.0 in
  let points = ref 0 in
  while !theta < 6.28 do
    let sin_t = sin !theta and cos_t = cos !theta in
    let phi = ref 0.0 in
    while !phi < 6.28 do
      let sin_p = sin !phi and cos_p = cos !phi in
      (* torus: R2 + R1*cos(theta), rotated by A (x-axis) and B (z-axis) *)
      let circle_x = 2.0 +. cos_t in
      let x3 = (circle_x *. ((cos_b *. cos_p) +. (sin_a *. sin_b *. sin_p)))
               -. (sin_t *. cos_a *. sin_b)
      and y3 = (circle_x *. ((sin_b *. cos_p) -. (sin_a *. cos_b *. sin_p)))
               +. (sin_t *. cos_a *. cos_b)
      and z3 = (cos_a *. circle_x *. sin_p) +. (sin_t *. sin_a) +. 5.0 in
      let ooz = 1.0 /. z3 in
      let xp = int_of_float (float_of_int (cols / 2) +. (float_of_int cols *. 0.3 *. ooz *. x3)) in
      let yp = int_of_float (float_of_int (rows / 2) -. (float_of_int rows *. 0.35 *. ooz *. y3)) in
      let l =
        (cos_p *. cos_t *. sin_b) -. (cos_a *. cos_t *. sin_p) -. (sin_a *. sin_t)
        +. (cos_b *. ((cos_a *. sin_t) -. (cos_t *. sin_a *. sin_p)))
      in
      if xp >= 0 && xp < cols && yp >= 0 && yp < rows && ooz > zbuf.((yp * cols) + xp)
      then begin
        zbuf.((yp * cols) + xp) <- ooz;
        lum.((yp * cols) + xp) <- l
      end;
      incr points;
      phi := !phi +. 0.02
    done;
    theta := !theta +. 0.07
  done;
  (lum, !points)

let ascii_ramp = ".,-~:;=!*#$@"

let frame_to_text ~cols ~rows lum =
  let buf = Buffer.create ((cols + 1) * rows) in
  for y = 0 to rows - 1 do
    for x = 0 to cols - 1 do
      let l = lum.((y * cols) + x) in
      if l < 0.0 then Buffer.add_char buf ' '
      else begin
        let idx = min 11 (int_of_float (l *. 8.0)) in
        Buffer.add_char buf ascii_ramp.[max 0 idx]
      end
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* argv: donut [text|pixels] [frames] [speed_mdeg] *)
let main env argv =
  Usys.in_frame "donut_main" (fun () ->
      let mode = match argv with _ :: m :: _ -> m | _ -> "pixels" in
      let frames =
        match argv with _ :: _ :: f :: _ -> int_of_string f | _ -> 0
      in
      let speed =
        match argv with _ :: _ :: _ :: s :: _ -> float_of_string s /. 1000.0 | _ -> 0.07
      in
      let a = ref 0.0 and b = ref 0.0 in
      let n = ref 0 in
      if String.equal mode "text" then begin
        while frames = 0 || !n < frames do
          let lum, points = render_luminance ~cols:60 ~rows:24 ~a:!a ~b:!b in
          Usys.burn (points * cycles_per_point);
          Usys.print ("\x1b[H" ^ frame_to_text ~cols:60 ~rows:24 lum);
          a := !a +. speed;
          b := !b +. (speed /. 2.0);
          incr n;
          ignore (Usys.sleep 33)
        done;
        0
      end
      else begin
        match Gfx.direct env with
        | Error e -> e
        | Ok gfx ->
            let cols = 200 and rows = 150 in
            while frames = 0 || !n < frames do
              let lum, points = render_luminance ~cols ~rows ~a:!a ~b:!b in
              Usys.burn (points * cycles_per_point);
              Gfx.fill gfx 0x000000;
              for y = 0 to rows - 1 do
                for x = 0 to cols - 1 do
                  let l = lum.((y * cols) + x) in
                  if l >= 0.0 then begin
                    let shade = max 40 (min 255 (int_of_float (l *. 180.0) + 70)) in
                    (* scale up 2x onto the framebuffer, offset to center *)
                    let px = Gfx.rgb shade (shade / 2) (shade / 4) in
                    let bx = 120 + (2 * x) and by = 90 + (2 * y) in
                    Gfx.put gfx ~x:bx ~y:by px;
                    Gfx.put gfx ~x:(bx + 1) ~y:by px;
                    Gfx.put gfx ~x:bx ~y:(by + 1) px;
                    Gfx.put gfx ~x:(bx + 1) ~y:(by + 1) px
                  end
                done
              done;
              Gfx.present gfx;
              a := !a +. speed;
              b := !b +. (speed /. 2.0);
              incr n;
              ignore (Usys.sleep 16)
            done;
            0
      end)
