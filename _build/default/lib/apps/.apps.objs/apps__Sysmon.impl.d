lib/apps/sysmon.ml: Bytes Gfx Int64 List Option Printf String User Usys
