lib/apps/hello.ml: User Usys
