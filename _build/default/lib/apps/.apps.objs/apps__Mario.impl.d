lib/apps/mario.ml: Array Bytes Core Float Gfx Hashtbl List Minisdl Printf Uevents User Usys
