lib/apps/blockchain.ml: Bytes List Printf Sha256 String User Usys Uthread
