lib/apps/doom.ml: Array Bytes Core Float Gfx List Printf Uevents User Usys
