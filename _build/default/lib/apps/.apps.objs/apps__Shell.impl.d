lib/apps/shell.ml: Buffer Bytes Core List String User Usys
