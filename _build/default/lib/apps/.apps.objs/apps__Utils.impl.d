lib/apps/utils.ml: Buffer Bytes Core List String User Usys
