lib/apps/music_player.ml: Adpcm Array Bmp Bytes Core Fs Gfx List Minisdl Pnglite String User Usys
