lib/apps/video_player.ml: Adpcm Array Bytes Core Gfx Mv1 Uenv User Usys
