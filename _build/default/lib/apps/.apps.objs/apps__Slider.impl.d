lib/apps/slider.ml: Array Bmp Buffer Bytes Core Gfx Giflite List Lzw Pnglite String Uevents User Usys
