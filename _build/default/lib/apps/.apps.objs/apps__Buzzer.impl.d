lib/apps/buzzer.ml: Bytes Core User Usys
