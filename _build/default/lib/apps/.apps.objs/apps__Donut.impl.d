lib/apps/donut.ml: Array Buffer Gfx String User Usys
