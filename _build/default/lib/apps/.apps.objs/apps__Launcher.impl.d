lib/apps/launcher.ml: Gfx List Minisdl Uevents User Usys
