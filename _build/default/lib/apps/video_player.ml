(** video player — MV1 (MPEG-1 stand-in) playback with optional VOGG
    audio, §6.3's configuration: streams are preloaded into memory, frames
    are decoded (IDCT per 8×8 block), converted YUV→RGB (scalar or NEON
    per §5.2), and blitted by direct rendering. Playback targets the
    video's native framerate; when decode can't keep up, FPS sags below
    native — exactly the paper's 480p-vs-720p contrast. *)


open User

(* argv: video [path] [max_frames] [audio_path] *)
let main env argv =
  Usys.in_frame "video_main" (fun () ->
      let path = match argv with _ :: p :: _ -> p | _ -> "/d/videos/clip.mv1" in
      let max_frames =
        match argv with _ :: _ :: f :: _ -> int_of_string f | _ -> 0
      in
      let audio_path = match argv with _ :: _ :: _ :: a :: _ -> Some a | _ -> None in
      (* preload the stream into memory, as the benchmark configuration does *)
      match Usys.slurp path with
      | Error e -> e
      | Ok data -> (
          (* preload arena (the paper preloads the stream before decoding)
             plus YUV+RGB working frames *)
          ignore (Usys.sbrk (20 * 1024 * 1024));
          ignore (Usys.sbrk (Bytes.length data));
          match Mv1.unpack data with
          | Error _ -> Core.Errno.einval
          | Ok video -> (
              match Gfx.direct env with
              | Error e -> e
              | Ok gfx ->
                  let simd = env.Uenv.e_simd in
                  let rgb = Array.make (video.Mv1.width * video.Mv1.height) 0 in
                  (* audio: decode thread via minisdl-style clone *)
                  let audio_tid =
                    match audio_path with
                    | None -> None
                    | Some apath -> (
                        match Usys.slurp apath with
                        | Error _ -> None
                        | Ok adata -> (
                            match Adpcm.unpack adata with
                            | Error _ -> None
                            | Ok (_rate, nsamples, payload) ->
                                let tid =
                                  Usys.clone (fun () ->
                                      let fd = Usys.open_ "/dev/sb" Core.Abi.o_wronly in
                                      if fd < 0 then 0
                                      else begin
                                        let chunk = 4096 in
                                        let pos = ref 0 in
                                        let buf = Bytes.create (chunk * 2) in
                                        let samples =
                                          Adpcm.decode payload ~samples:nsamples
                                        in
                                        while !pos < nsamples do
                                          let n = min chunk (nsamples - !pos) in
                                          (* decode cost charged per chunk as
                                             a streaming decoder would pay *)
                                          Usys.burn (n * Adpcm.cycles_per_sample);
                                          for i = 0 to n - 1 do
                                            let v = samples.(!pos + i) land 0xffff in
                                            Bytes.set_uint8 buf (2 * i) (v land 0xff);
                                            Bytes.set_uint8 buf ((2 * i) + 1)
                                              ((v lsr 8) land 0xff)
                                          done;
                                          ignore (Usys.write fd (Bytes.sub buf 0 (2 * n)));
                                          pos := !pos + n
                                        done;
                                        ignore (Usys.close fd);
                                        0
                                      end)
                                in
                                if tid > 0 then Some tid else None))
                  in
                  let frame_ms = 1000 / max 1 video.Mv1.fps in
                  let start_ms = Usys.uptime_ms () in
                  let shown = ref 0 in
                  (* loop the clip forever when no frame budget is given
                     (benchmark mode) *)
                  let total = if max_frames > 0 then max_frames else max_int in
                  while !shown < total do
                    let idx = !shown mod Array.length video.Mv1.frames in
                    let payload = video.Mv1.frames.(idx) in
                    let frame =
                      Mv1.decode_frame ~width:video.Mv1.width
                        ~height:video.Mv1.height ~quality:Mv1.quality payload
                    in
                    let blocks =
                      Mv1.blocks_per_frame ~width:video.Mv1.width
                        ~height:video.Mv1.height
                    in
                    Usys.burn
                      (Mv1.cycles_per_frame_fixed
                      + (blocks * Mv1.cycles_per_block ~simd));
                    let conv_cycles =
                      Mv1.to_rgb ~simd frame ~width:video.Mv1.width
                        ~height:video.Mv1.height rgb
                    in
                    Usys.burn conv_cycles;
                    (* center-blit to the framebuffer *)
                    let gw = gfx.Gfx.width and gh = gfx.Gfx.height in
                    let ox = max 0 ((gw - video.Mv1.width) / 2) in
                    let oy = max 0 ((gh - video.Mv1.height) / 2) in
                    for y = 0 to min (video.Mv1.height - 1) (gh - 1 - oy) do
                      for x = 0 to min (video.Mv1.width - 1) (gw - 1 - ox) do
                        gfx.Gfx.pixels.(((oy + y) * gw) + ox + x) <-
                          rgb.((y * video.Mv1.width) + x)
                      done
                    done;
                    Gfx.charge gfx (video.Mv1.width * video.Mv1.height / 8);
                    Gfx.present gfx;
                    incr shown;
                    (* pace to the native framerate when we're ahead *)
                    let target_ms = start_ms + (!shown * frame_ms) in
                    let now_ms = Usys.uptime_ms () in
                    if now_ms < target_ms then ignore (Usys.sleep (target_ms - now_ms))
                  done;
                  (match audio_tid with
                  | Some tid ->
                      ignore (Usys.kill tid);
                      ignore (Usys.join tid)
                  | None -> ());
                  0)))
