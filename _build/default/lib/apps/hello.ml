(** helloworld — the Prototype 1 staple; also exercises the "infant app"
    path of Prototype 3 (tens of lines, PC-relative only). *)


open User

let main _env argv =
  Usys.in_frame "hello_main" (fun () ->
      let who = match argv with _ :: name :: _ -> name | _ -> "world" in
      Usys.printf "hello, %s! (pid %d)\n" who (Usys.getpid ());
      Usys.burn 5_000;
      0)
