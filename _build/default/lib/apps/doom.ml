(** DOOM — the doomgeneric-style port (§3, §4.5): a real software-rendered
    3D engine (textured raycast walls, shaded floors, billboard sprites, a
    status bar) driving the framebuffer directly, polling keys without
    blocking (the Prototype 5 non-blocking IO path), and autopiloting when
    nobody is at the keyboard — so benches exercise the same code path as
    play.

    Per-frame cost = real per-pixel work (texture sampling, shading)
    plus the game-logic charge of the id tick (thinkers, BSP-ish checks),
    calibrated so Pi3 lands in Table 4's ~62 FPS band. *)


open User

let screen_w = 640
let screen_h = 480
let view_h = 400 (* status bar below *)

(* cycle model *)
let cycles_wall_px = 52 (* texture fetch + shade + store *)
let cycles_floor_px = 16
let cycles_sprite_px = 14
let cycles_game_tick = 3_300_000 (* thinkers, collision, AI *)
let cycles_per_ray_step = 18

let map_n = 24

let map =
  (* 1..3 = wall texture ids, 0 = open *)
  Array.init map_n (fun y ->
      Array.init map_n (fun x ->
          if x = 0 || y = 0 || x = map_n - 1 || y = map_n - 1 then 1
          else if (x mod 6 = 3 && y mod 4 <> 1) && (x + y) mod 7 <> 0 then 2
          else if x mod 9 = 5 && y mod 5 = 2 then 3
          else 0))

let wall_at x y =
  if x < 0 || y < 0 || x >= map_n || y >= map_n then 1
  else map.(y).(x)

(* procedural 64x64 textures *)
let tex_n = 64

let textures =
  [|
    (* gray stone blocks *)
    Array.init (tex_n * tex_n) (fun i ->
        let x = i mod tex_n and y = i / tex_n in
        let edge = x mod 16 < 1 || y mod 16 < 1 in
        let base = 110 + ((x * 7 + y * 13) mod 24) in
        if edge then Gfx.rgb 50 50 55 else Gfx.rgb base base (base + 8));
    (* red brick *)
    Array.init (tex_n * tex_n) (fun i ->
        let x = i mod tex_n and y = i / tex_n in
        let row = y / 8 in
        let xoff = if row mod 2 = 0 then 0 else 8 in
        let mortar = y mod 8 < 1 || (x + xoff) mod 16 < 1 in
        if mortar then Gfx.rgb 140 130 120
        else Gfx.rgb (150 + ((x * y) mod 30)) 50 40);
    (* green tech *)
    Array.init (tex_n * tex_n) (fun i ->
        let x = i mod tex_n and y = i / tex_n in
        let glow = (x / 4 + y / 4) mod 2 = 0 in
        if glow then Gfx.rgb 30 (120 + (x mod 40)) 60 else Gfx.rgb 20 60 40);
  |]

let texture id = textures.((id - 1) mod Array.length textures)

type sprite = { mutable sx : float; mutable sy : float; mutable alive : bool }

type state = {
  mutable px : float;
  mutable py : float;
  mutable dir : float;
  mutable health : int;
  mutable ammo : int;
  mutable frame : int;
  mutable fire_flash : int;
  sprites : sprite array;
  zbuf : float array;
}

let fresh_state () =
  {
    px = 2.5;
    py = 2.5;
    dir = 0.4;
    health = 100;
    ammo = 50;
    frame = 0;
    fire_flash = 0;
    sprites =
      [|
        { sx = 8.5; sy = 6.5; alive = true };
        { sx = 14.5; sy = 12.5; alive = true };
        { sx = 20.5; sy = 18.5; alive = true };
        { sx = 5.5; sy = 17.5; alive = true };
      |];
    zbuf = Array.make screen_w infinity;
  }

type input = {
  forward : bool;
  back : bool;
  turn_l : bool;
  turn_r : bool;
  fire : bool;
}

let no_input = { forward = false; back = false; turn_l = false; turn_r = false; fire = false }

(* Autopilot: walk forward, turn away from walls, fire at intervals. *)
let bot st =
  let probe = 0.8 in
  let nx = st.px +. (cos st.dir *. probe) and ny = st.py +. (sin st.dir *. probe) in
  let blocked = wall_at (int_of_float nx) (int_of_float ny) <> 0 in
  {
    forward = not blocked;
    back = false;
    turn_l = blocked;
    turn_r = (not blocked) && st.frame mod 97 < 8;
    fire = st.frame mod 61 = 0;
  }

let step st input =
  st.frame <- st.frame + 1;
  if st.fire_flash > 0 then st.fire_flash <- st.fire_flash - 1;
  let turn = 0.045 in
  if input.turn_l then st.dir <- st.dir -. turn;
  if input.turn_r then st.dir <- st.dir +. turn;
  let speed = 0.08 in
  let move dx dy =
    let nx = st.px +. dx and ny = st.py +. dy in
    if wall_at (int_of_float nx) (int_of_float st.py) = 0 then st.px <- nx;
    if wall_at (int_of_float st.px) (int_of_float ny) = 0 then st.py <- ny
  in
  if input.forward then move (cos st.dir *. speed) (sin st.dir *. speed);
  if input.back then move (-.cos st.dir *. speed) (-.sin st.dir *. speed);
  if input.fire && st.ammo > 0 then begin
    st.ammo <- st.ammo - 1;
    st.fire_flash <- 3;
    (* hitscan: kill the nearest sprite within a narrow cone *)
    Array.iter
      (fun s ->
        if s.alive then begin
          let dx = s.sx -. st.px and dy = s.sy -. st.py in
          let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
          let angle = atan2 dy dx -. st.dir in
          let angle = atan2 (sin angle) (cos angle) in
          if Float.abs angle < 0.1 && dist < 12.0 then s.alive <- false
        end)
      st.sprites
  end;
  (* respawn sprites occasionally so long runs keep working *)
  if st.frame mod 600 = 0 then
    Array.iter (fun s -> s.alive <- true) st.sprites

(* DDA raycast for one column; returns (distance, texture id, tex x, steps) *)
let cast st angle =
  let dx = cos angle and dy = sin angle in
  let map_x = ref (int_of_float st.px) and map_y = ref (int_of_float st.py) in
  let delta_x = if dx = 0.0 then 1e30 else Float.abs (1.0 /. dx) in
  let delta_y = if dy = 0.0 then 1e30 else Float.abs (1.0 /. dy) in
  let step_x = if dx < 0.0 then -1 else 1 in
  let step_y = if dy < 0.0 then -1 else 1 in
  let side_x =
    ref
      (if dx < 0.0 then (st.px -. float_of_int !map_x) *. delta_x
       else (float_of_int (!map_x + 1) -. st.px) *. delta_x)
  in
  let side_y =
    ref
      (if dy < 0.0 then (st.py -. float_of_int !map_y) *. delta_y
       else (float_of_int (!map_y + 1) -. st.py) *. delta_y)
  in
  let side = ref 0 and hit = ref 0 and steps = ref 0 in
  while !hit = 0 do
    incr steps;
    if !side_x < !side_y then begin
      side_x := !side_x +. delta_x;
      map_x := !map_x + step_x;
      side := 0
    end
    else begin
      side_y := !side_y +. delta_y;
      map_y := !map_y + step_y;
      side := 1
    end;
    hit := wall_at !map_x !map_y
  done;
  let dist =
    if !side = 0 then !side_x -. delta_x else !side_y -. delta_y
  in
  let wall_hit =
    if !side = 0 then st.py +. (dist *. dy) else st.px +. (dist *. dx)
  in
  let texx = int_of_float (Float.rem wall_hit 1.0 *. float_of_int tex_n) in
  (Float.max 0.05 dist, !hit, texx land (tex_n - 1), !steps, !side)

let shade px factor =
  let f c = int_of_float (float_of_int c *. factor) in
  Gfx.rgb (f ((px lsr 16) land 0xff)) (f ((px lsr 8) land 0xff)) (f (px land 0xff))

let render st gfx =
  let cost = ref cycles_game_tick in
  let fov = 1.05 in
  (* ceiling and floor: vertical shading bands *)
  for y = 0 to (view_h / 2) - 1 do
    let shade_c = 40 + (y * 30 / view_h) in
    Gfx.fill_rect gfx ~x:0 ~y ~w:screen_w ~h:1 (Gfx.rgb shade_c shade_c (shade_c + 12))
  done;
  for y = view_h / 2 to view_h - 1 do
    let d = y - (view_h / 2) in
    let shade_f = 35 + (d * 90 / view_h) in
    Gfx.fill_rect gfx ~x:0 ~y ~w:screen_w ~h:1 (Gfx.rgb (shade_f + 14) shade_f (shade_f / 2))
  done;
  cost := !cost + (screen_w * view_h * cycles_floor_px / 2);
  (* walls *)
  for col = 0 to screen_w - 1 do
    let angle = st.dir +. ((float_of_int col /. float_of_int screen_w) -. 0.5) *. fov in
    let dist, texid, texx, steps, side = cast st angle in
    let corrected = dist *. cos (angle -. st.dir) in
    st.zbuf.(col) <- corrected;
    let height = min view_h (int_of_float (float_of_int view_h /. corrected)) in
    let y0 = (view_h - height) / 2 in
    let tex = texture texid in
    let dim = (if side = 1 then 0.7 else 1.0) /. (1.0 +. (corrected *. 0.12)) in
    for y = y0 to y0 + height - 1 do
      let texy = (y - y0) * tex_n / max 1 height in
      let px = tex.((texy * tex_n) + texx) in
      Gfx.put gfx ~x:col ~y (shade px dim)
    done;
    cost := !cost + (height * cycles_wall_px) + (steps * cycles_per_ray_step)
  done;
  (* billboard sprites, far to near *)
  let order =
    st.sprites |> Array.to_list
    |> List.filter (fun s -> s.alive)
    |> List.map (fun s ->
           let dx = s.sx -. st.px and dy = s.sy -. st.py in
           (sqrt ((dx *. dx) +. (dy *. dy)), s))
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  List.iter
    (fun (dist, s) ->
      if dist > 0.5 then begin
        let angle = atan2 (s.sy -. st.py) (s.sx -. st.px) -. st.dir in
        let angle = atan2 (sin angle) (cos angle) in
        if Float.abs angle < fov /. 1.6 then begin
          let size = min 300 (int_of_float (float_of_int view_h /. dist *. 0.7)) in
          let center = int_of_float ((angle /. fov +. 0.5) *. float_of_int screen_w) in
          let y0 = (view_h / 2) - (size / 2) in
          for sx = max 0 (center - (size / 2)) to min (screen_w - 1) (center + (size / 2)) do
            if dist < st.zbuf.(sx) then begin
              for sy = max 0 y0 to min (view_h - 1) (y0 + size) do
                let u = (sx - (center - (size / 2))) * 2 - size in
                let v = (sy - y0) * 2 - size in
                if (u * u) + (v * v) < size * size then
                  Gfx.put gfx ~x:sx ~y:sy
                    (Gfx.rgb (160 - min 100 (int_of_float (dist *. 10.0))) 30 30)
              done;
              cost := !cost + (size * cycles_sprite_px)
            end
          done
        end
      end)
    order;
  (* muzzle flash *)
  if st.fire_flash > 0 then
    Gfx.fill_rect gfx ~x:(screen_w / 2 - 20) ~y:(view_h - 80) ~w:40 ~h:40
      (Gfx.rgb 255 220 90);
  (* status bar *)
  Gfx.fill_rect gfx ~x:0 ~y:view_h ~w:screen_w ~h:(screen_h - view_h)
    (Gfx.rgb 40 40 40);
  Gfx.text gfx ~x:16 ~y:(view_h + 30) ~color:0xff4040
    (Printf.sprintf "HEALTH %d" st.health);
  Gfx.text gfx ~x:200 ~y:(view_h + 30) ~color:0xffff60
    (Printf.sprintf "AMMO %d" st.ammo);
  Gfx.text gfx ~x:400 ~y:(view_h + 30) ~color:0x80ff80
    (Printf.sprintf "FRAME %d" st.frame);
  Gfx.charge gfx !cost

let input_of_events events held =
  List.iter
    (fun ev ->
      let p = ev.Uevents.pressed in
      match ev.Uevents.key with
      | Uevents.Up | Uevents.Char 'w' -> held := { !held with forward = p }
      | Uevents.Down | Uevents.Char 's' -> held := { !held with back = p }
      | Uevents.Left -> held := { !held with turn_l = p }
      | Uevents.Right -> held := { !held with turn_r = p }
      | Uevents.Space -> held := { !held with fire = p }
      | Uevents.Enter | Uevents.Escape | Uevents.Tab | Uevents.Char _
      | Uevents.Other _ ->
          ())
    events

(* argv: doom [frames] [cap_fps] *)
let main env argv =
  Usys.in_frame "doom_main" (fun () ->
      let frames = match argv with _ :: f :: _ -> int_of_string f | _ -> 0 in
      let cap_fps = match argv with _ :: _ :: c :: _ -> int_of_string c | _ -> 0 in
      (* id-style zone memory, plus the WAD read into it (§4.5: loading
         DOOM's multi-MB assets is what motivates FAT32 + range IO) *)
      ignore (Usys.sbrk (12 * 1024 * 1024));
      (match Usys.slurp "/d/doom/doom1.wad" with
      | Ok wad ->
          ignore (Usys.sbrk (Bytes.length wad));
          Usys.burn (Bytes.length wad / 4) (* lump directory parse *)
      | Error _ -> ());
      match Gfx.direct env with
      | Error e -> e
      | Ok gfx -> (
          (* non-blocking key polling: the §4.5 enhancement *)
          let ev_fd =
            Usys.open_ "/dev/events" (Core.Abi.o_rdonly lor Core.Abi.o_nonblock)
          in
          if ev_fd < 0 then -ev_fd
          else begin
            let st = fresh_state () in
            let held = ref no_input in
            let manual_until = ref 0 in
            while frames = 0 || st.frame < frames do
              let events = Uevents.poll_events ev_fd in
              if events <> [] then manual_until := st.frame + 300;
              input_of_events events held;
              let input = if st.frame < !manual_until then !held else bot st in
              step st input;
              render st gfx;
              Gfx.present gfx;
              if cap_fps > 0 then ignore (Usys.sleep (1000 / cap_fps))
            done;
            ignore (Usys.close ev_fd);
            0
          end))
