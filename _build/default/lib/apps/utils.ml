(** Console utilities ported from xv6 (§3): ls, cat, echo, wc, mkdir, rm,
    grep, kill, ps, uptime. Each is a registered program with the standard
    argv convention. *)


open User

let ls_main _env argv =
  let path = match argv with _ :: p :: _ -> p | _ -> "." in
  let fd = Usys.open_ path Core.Abi.o_rdonly in
  if fd < 0 then begin
    Usys.printf "ls: cannot open %s\n" path;
    1
  end
  else begin
    match Usys.fstat fd with
    | Error e ->
        ignore (Usys.close fd);
        e
    | Ok st when st.Core.Abi.stat_type <> Core.Abi.T_dir ->
        ignore (Usys.close fd);
        Usys.printf "%s %d\n" path st.Core.Abi.stat_size;
        0
    | Ok _ ->
        let buf = Buffer.create 256 in
        let rec drain () =
          match Usys.read fd 4096 with
          | Ok b when Bytes.length b > 0 ->
              Buffer.add_bytes buf b;
              drain ()
          | Ok _ | Error _ -> ()
        in
        drain ();
        ignore (Usys.close fd);
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun n -> n <> "")
        |> List.iter (fun name ->
               let full = if String.equal path "/" then "/" ^ name else path ^ "/" ^ name in
               let ffd = Usys.open_ full Core.Abi.o_rdonly in
               if ffd < 0 then Usys.printf "%-20s ?\n" name
               else begin
                 (match Usys.fstat ffd with
                 | Ok st ->
                     let kind =
                       match st.Core.Abi.stat_type with
                       | Core.Abi.T_dir -> "d"
                       | Core.Abi.T_file -> "-"
                       | Core.Abi.T_dev -> "c"
                     in
                     Usys.printf "%s %-20s %8d\n" kind name st.Core.Abi.stat_size
                 | Error _ -> Usys.printf "? %-20s\n" name);
                 ignore (Usys.close ffd)
               end);
        0
  end

let cat_main _env argv =
  match argv with
  | _ :: files when files <> [] ->
      List.fold_left
        (fun rc file ->
          match Usys.slurp file with
          | Ok data ->
              Usys.print (Bytes.to_string data);
              rc
          | Error _ ->
              Usys.printf "cat: cannot open %s\n" file;
              1)
        0 files
  | _ ->
      Usys.print "usage: cat files...\n";
      1

let echo_main _env argv =
  (match argv with
  | _ :: words -> Usys.print (String.concat " " words ^ "\n")
  | [] -> Usys.print "\n");
  0

let wc_main _env argv =
  match argv with
  | _ :: files when files <> [] ->
      List.iter
        (fun file ->
          match Usys.slurp file with
          | Error _ -> Usys.printf "wc: cannot open %s\n" file
          | Ok data ->
              let text = Bytes.to_string data in
              let lines = List.length (String.split_on_char '\n' text) - 1 in
              let words =
                String.split_on_char ' ' (String.map (fun c -> if c = '\n' then ' ' else c) text)
                |> List.filter (fun w -> w <> "")
                |> List.length
              in
              Usys.printf "%d %d %d %s\n" lines words (Bytes.length data) file)
        files;
      0
  | _ ->
      Usys.print "usage: wc files...\n";
      1

let mkdir_main _env argv =
  match argv with
  | _ :: dirs when dirs <> [] ->
      List.fold_left
        (fun rc dir ->
          if Usys.mkdir dir < 0 then begin
            Usys.printf "mkdir: failed to create %s\n" dir;
            1
          end
          else rc)
        0 dirs
  | _ ->
      Usys.print "usage: mkdir dirs...\n";
      1

let rm_main _env argv =
  match argv with
  | _ :: files when files <> [] ->
      List.fold_left
        (fun rc file ->
          if Usys.unlink file < 0 then begin
            Usys.printf "rm: failed to delete %s\n" file;
            1
          end
          else rc)
        0 files
  | _ ->
      Usys.print "usage: rm files...\n";
      1

let grep_main _env argv =
  match argv with
  | _ :: pattern :: files when files <> [] ->
      let matches line =
        let n = String.length pattern and m = String.length line in
        let rec at i = i + n <= m && (String.equal (String.sub line i n) pattern || at (i + 1)) in
        at 0
      in
      List.iter
        (fun file ->
          match Usys.slurp file with
          | Error _ -> Usys.printf "grep: cannot open %s\n" file
          | Ok data ->
              String.split_on_char '\n' (Bytes.to_string data)
              |> List.iter (fun line -> if matches line then Usys.print (line ^ "\n")))
        files;
      0
  | _ ->
      Usys.print "usage: grep pattern files...\n";
      1

let kill_main _env argv =
  match argv with
  | _ :: pids when pids <> [] ->
      List.iter
        (fun pid ->
          match int_of_string_opt pid with
          | Some p -> ignore (Usys.kill p)
          | None -> Usys.printf "kill: bad pid %s\n" pid)
        pids;
      0
  | _ ->
      Usys.print "usage: kill pids...\n";
      1

let ps_main _env _argv =
  match Usys.slurp "/proc/tasks" with
  | Ok data ->
      Usys.print (Bytes.to_string data);
      0
  | Error e -> e

let uptime_main _env _argv =
  Usys.printf "up %d ms\n" (Usys.uptime_ms ());
  0
