(** sh — the console shell ported from xv6 and enhanced with script
    execution (§3): reads commands from the UART console (or a script
    file), forks and execs programs from the root filesystem, supports
    [&] background jobs, [;] sequences, and the cd/exit builtins. *)


open User

let prompt = "vos$ "

let read_line fd =
  let buf = Buffer.create 64 in
  let rec go () =
    match Usys.read fd 1 with
    | Ok b when Bytes.length b = 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | Ok b ->
        let c = Bytes.get b 0 in
        if c = '\n' || c = '\r' then Some (Buffer.contents buf)
        else begin
          Buffer.add_char buf c;
          go ()
        end
    | Error _ -> None
  in
  go ()

let tokenize line =
  String.split_on_char ' ' line |> List.filter (fun t -> String.length t > 0)

let run_command tokens ~background =
  match tokens with
  | [] -> ()
  | prog :: _ -> (
      let path = if prog.[0] = '/' then prog else "/" ^ prog in
      let pid =
        Usys.fork (fun () ->
            let rc = Usys.exec path tokens in
            Usys.printf "sh: cannot exec %s\n" prog;
            rc)
      in
      if pid < 0 then Usys.printf "sh: fork failed\n"
      else if background then Usys.printf "[%d] %s &\n" pid prog
      else ignore (Usys.wait ()))

let execute_line line =
  (* comments and sequences *)
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  List.iter
    (fun cmd ->
      let cmd = String.trim cmd in
      if String.length cmd > 0 then begin
        let background = String.length cmd > 0 && cmd.[String.length cmd - 1] = '&' in
        let cmd = if background then String.trim (String.sub cmd 0 (String.length cmd - 1)) else cmd in
        match tokenize cmd with
        | [] -> ()
        | [ "exit" ] -> Usys.exit 0
        | "cd" :: dir :: _ ->
            if Usys.chdir dir < 0 then Usys.printf "sh: cd: no such directory: %s\n" dir
        | [ "cd" ] -> ignore (Usys.chdir "/")
        | [ "help" ] ->
            Usys.print "builtins: cd exit help; programs live in /\n"
        | tokens -> run_command tokens ~background
      end)
    (String.split_on_char ';' line)

let run_script path =
  match Usys.slurp path with
  | Error e ->
      Usys.printf "sh: cannot open %s\n" path;
      e
  | Ok data ->
      String.split_on_char '\n' (Bytes.to_string data)
      |> List.iter execute_line;
      0

(* argv: sh [script] *)
let main _env argv =
  Usys.in_frame "sh_main" (fun () ->
      match argv with
      | _ :: script :: _ -> run_script script
      | _ ->
          let fd = Usys.open_ "/dev/console" Core.Abi.o_rdwr in
          if fd < 0 then -fd
          else begin
            let running = ref true in
            while !running do
              Usys.print prompt;
              match read_line fd with
              | None -> running := false
              | Some line -> execute_line line
            done;
            0
          end)
