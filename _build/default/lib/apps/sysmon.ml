(** sysmon — the floating, semi-transparent CPU/memory overlay that rides
    on top of every other window (§4.5, Figure 1(m)). Polls procfs and
    redraws through the WM once a second. *)


open User

let parse_meminfo text =
  let find key =
    List.find_map
      (fun line ->
        match String.index_opt line ':' with
        | Some i when String.equal (String.sub line 0 i) key ->
            let rest = String.sub line (i + 1) (String.length line - i - 1) in
            let digits = String.trim (String.map (fun c -> if c >= '0' && c <= '9' then c else ' ') rest) in
            (match String.split_on_char ' ' (String.trim digits) with
            | n :: _ when n <> "" -> int_of_string_opt n
            | _ -> None)
        | Some _ | None -> None)
      (String.split_on_char '\n' text)
  in
  (Option.value ~default:0 (find "MemUsed"), Option.value ~default:1 (find "MemTotal"))

let parse_busy text =
  List.filter_map
    (fun line ->
      match String.index_opt line ':' with
      | Some i when String.length line > 7 && String.equal (String.sub line 0 7) "busy_ns" ->
          Int64.of_string_opt (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
      | Some _ | None -> None)
    (String.split_on_char '\n' text)

let read_proc path =
  match Usys.slurp path with Ok b -> Bytes.to_string b | Error _ -> ""

(* argv: sysmon [iterations] *)
let main _env argv =
  Usys.in_frame "sysmon_main" (fun () ->
      let iters = match argv with _ :: n :: _ -> int_of_string n | _ -> 0 in
      match Gfx.windowed ~width:180 ~height:100 ~x:450 ~y:10 ~alpha:170 () with
      | Error e -> e
      | Ok gfx ->
          let prev_busy = ref [] in
          let n = ref 0 in
          while iters = 0 || !n < iters do
            let busy = parse_busy (read_proc "/proc/cpuinfo") in
            let used_kb, total_kb = parse_meminfo (read_proc "/proc/meminfo") in
            Gfx.fill gfx (Gfx.rgb 12 16 28);
            Gfx.text gfx ~x:4 ~y:4 ~color:0xffffff "SYSMON";
            (* per-core utilization bars from busy_ns deltas *)
            List.iteri
              (fun core now ->
                let prev =
                  match List.nth_opt !prev_busy core with Some p -> p | None -> 0L
                in
                let delta = Int64.to_float (Int64.sub now prev) in
                let frac = min 1.0 (delta /. 1e9) in
                let w = int_of_float (frac *. 120.0) in
                let y = 16 + (core * 12) in
                Gfx.fill_rect gfx ~x:30 ~y ~w:120 ~h:8 (Gfx.rgb 30 34 48);
                Gfx.fill_rect gfx ~x:30 ~y ~w ~h:8 (Gfx.rgb 90 220 120);
                Gfx.text gfx ~x:4 ~y ~color:0xa0a0a0 (Printf.sprintf "C%d" core))
              busy;
            prev_busy := busy;
            let mem_frac = float_of_int used_kb /. float_of_int (max 1 total_kb) in
            Gfx.fill_rect gfx ~x:30 ~y:70 ~w:120 ~h:8 (Gfx.rgb 30 34 48);
            Gfx.fill_rect gfx ~x:30 ~y:70
              ~w:(int_of_float (mem_frac *. 120.0))
              ~h:8 (Gfx.rgb 240 180 70);
            Gfx.text gfx ~x:4 ~y:70 ~color:0xa0a0a0 "MEM";
            Gfx.text gfx ~x:4 ~y:86 ~color:0x808080
              (Printf.sprintf "%d/%dMB" (used_kb / 1024) (total_kb / 1024));
            Gfx.present gfx;
            incr n;
            ignore (Usys.sleep 1000)
          done;
          Gfx.close gfx;
          0)
