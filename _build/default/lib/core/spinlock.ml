(** Spinlocks, with the Prototype 1 evolution the paper describes (§4.1).

    The simulation is single-threaded, so a spinlock can never actually be
    contended at the instant of acquisition — but the {e discipline} is
    enforced (no recursive acquisition, release-by-owner) and acquisition
    counts and hold times are recorded, which the scheduler uses for its
    contention accounting and tests use to verify locking protocols.

    [irq_guard] is the single-core reduction: reference-counted interrupt
    disable (xv6's pushcli/popcli), which is what Prototype 1 settles on. *)

type t = {
  name : string;
  mutable owner : int option;  (** core id *)
  mutable acquisitions : int;
  mutable acquired_at : int64;
  mutable total_held_ns : int64;
}

let create name =
  {
    name;
    owner = None;
    acquisitions = 0;
    acquired_at = 0L;
    total_held_ns = 0L;
  }

let acquire t ~core ~now_ns =
  (match t.owner with
  | Some held_by ->
      invalid_arg
        (Printf.sprintf "spinlock %s: core %d acquiring while core %d holds"
           t.name core held_by)
  | None -> ());
  t.owner <- Some core;
  t.acquisitions <- t.acquisitions + 1;
  t.acquired_at <- now_ns

let release t ~core ~now_ns =
  (match t.owner with
  | Some held_by when held_by = core -> ()
  | Some held_by ->
      invalid_arg
        (Printf.sprintf "spinlock %s: core %d releasing core %d's lock" t.name
           core held_by)
  | None -> invalid_arg (Printf.sprintf "spinlock %s: release when free" t.name));
  t.owner <- None;
  t.total_held_ns <- Int64.add t.total_held_ns (Int64.sub now_ns t.acquired_at)

let holding t ~core = t.owner = Some core
let acquisitions t = t.acquisitions
let total_held_ns t = t.total_held_ns

(** Reference-counted interrupt on/off, the single-core substitute. *)
module Irq_guard = struct
  type guard = {
    intc : Hw.Intc.t;
    core : int;
    mutable depth : int;
  }

  let create intc ~core = { intc; core; depth = 0 }

  let push g =
    if g.depth = 0 then Hw.Intc.mask g.intc ~core:g.core;
    g.depth <- g.depth + 1

  let pop g =
    if g.depth <= 0 then invalid_arg "irq_guard: pop without push";
    g.depth <- g.depth - 1;
    if g.depth = 0 then Hw.Intc.unmask g.intc ~core:g.core

  let depth g = g.depth
end
