(** Pipes, ported from xv6 essentially unchanged — which is the point:
    Figure 11 shows this simplistic design (512-byte buffer, byte-wise
    copies, wakeup on every operation) becoming the latency bottleneck
    even for 10-byte keyboard events in mario-proc. *)

let buffer_bytes = Kcost.pipe_buffer_bytes

type t = {
  pipe_id : int;
  data : Bytes.t;
  mutable rpos : int;
  mutable wpos : int;  (** count of bytes ever read/written; w-r = fill *)
  mutable readers : int;
  mutable writers : int;
  rchan : string;
  wchan : string;
}

let next_id = ref 0

let create () =
  incr next_id;
  let id = !next_id in
  {
    pipe_id = id;
    data = Bytes.create buffer_bytes;
    rpos = 0;
    wpos = 0;
    readers = 1;
    writers = 1;
    rchan = Printf.sprintf "pipe:%d:r" id;
    wchan = Printf.sprintf "pipe:%d:w" id;
  }

let fill t = t.wpos - t.rpos
let space t = buffer_bytes - fill t

let push_byte t c =
  Bytes.set t.data (t.wpos mod buffer_bytes) c;
  t.wpos <- t.wpos + 1

let pop_byte t =
  let c = Bytes.get t.data (t.rpos mod buffer_bytes) in
  t.rpos <- t.rpos + 1;
  c

(* Write all of [data]; blocks while the buffer is full, like xv6's
   pipewrite. Fails with EPIPE-ish -EINVAL when no reader remains. *)
let write ctx t data =
  let sched = ctx.Sched.sched in
  let len = Bytes.length data in
  let sent = ref 0 in
  let rec step () =
    if t.readers = 0 then Sched.finish ctx (Abi.R_int (-Errno.einval))
    else if !sent >= len then begin
      Sched.charge ctx Kcost.wakeup;
      Sched.wake_all sched t.rchan;
      Sched.finish ctx (Abi.R_int len)
    end
    else if space t = 0 then begin
      (* wake readers to drain, then sleep on write space *)
      Sched.wake_all sched t.rchan;
      Sched.block ctx ~chan:t.wchan ~retry:step
    end
    else begin
      let n = min (len - !sent) (space t) in
      for i = 0 to n - 1 do
        push_byte t (Bytes.get data (!sent + i))
      done;
      Sched.charge ctx (Kcost.pipe_per_byte * n);
      sent := !sent + n;
      step ()
    end
  in
  step ()

(* Read up to [len] bytes; blocks while empty and writers remain. *)
let read ctx t ~len ~nonblock =
  let sched = ctx.Sched.sched in
  let rec step () =
    if fill t > 0 then begin
      let n = min len (fill t) in
      let out = Bytes.create n in
      for i = 0 to n - 1 do
        Bytes.set out i (pop_byte t)
      done;
      Sched.charge ctx ((Kcost.pipe_per_byte * n) + Kcost.wakeup);
      Sched.wake_all sched t.wchan;
      Sched.finish ctx (Abi.R_bytes out)
    end
    else if t.writers = 0 then Sched.finish ctx (Abi.R_bytes Bytes.empty)
    else if nonblock then Sched.finish ctx (Abi.R_int (-Errno.eagain))
    else Sched.block ctx ~chan:t.rchan ~retry:step
  in
  step ()

let close_read sched t =
  t.readers <- t.readers - 1;
  if t.readers = 0 then Sched.wake_all sched t.wchan

let close_write sched t =
  t.writers <- t.writers - 1;
  if t.writers = 0 then Sched.wake_all sched t.rchan

let dup_read t = t.readers <- t.readers + 1
let dup_write t = t.writers <- t.writers + 1
