(** Kernel semaphores (Prototype 5, §4.5).

    The primitive behind the threading syscalls: user-level mutexes and
    condition variables are built on these in the user library, exactly as
    the paper describes. *)

type sem = {
  sem_id : int;
  mutable value : int;
  mutable refs : int;
  chan : string;
}

type t = {
  sched : Sched.t;
  sems : (int, sem) Hashtbl.t;
  mutable next_id : int;
}

let create sched = { sched; sems = Hashtbl.create 16; next_id = 1 }

let sem_open t ~value =
  if value < 0 then Error Errno.einval
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    Hashtbl.replace t.sems id
      { sem_id = id; value; refs = 1; chan = Printf.sprintf "sem:%d" id };
    Ok id
  end

let find t id = Hashtbl.find_opt t.sems id

let post ctx t id =
  Sched.charge ctx Kcost.sem_op;
  match find t id with
  | None -> Sched.finish ctx (Abi.R_int (-Errno.einval))
  | Some sem ->
      sem.value <- sem.value + 1;
      Sched.charge ctx Kcost.wakeup;
      ignore (Sched.wake_one t.sched sem.chan);
      Sched.finish ctx (Abi.R_int 0)

let wait ctx t id =
  Sched.charge ctx Kcost.sem_op;
  match find t id with
  | None -> Sched.finish ctx (Abi.R_int (-Errno.einval))
  | Some sem ->
      let rec attempt () =
        if sem.value > 0 then begin
          sem.value <- sem.value - 1;
          Sched.finish ctx (Abi.R_int 0)
        end
        else Sched.block ctx ~chan:sem.chan ~retry:attempt
      in
      attempt ()

let close ctx t id =
  match find t id with
  | None -> Sched.finish ctx (Abi.R_int (-Errno.einval))
  | Some sem ->
      sem.refs <- sem.refs - 1;
      if sem.refs <= 0 then Hashtbl.remove t.sems id;
      Sched.finish ctx (Abi.R_int 0)

let live_count t = Hashtbl.length t.sems
