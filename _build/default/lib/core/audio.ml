(** The audio output path behind /dev/sb — the paper's showcase
    producer-consumer pipeline (§4.4): the app writes PCM samples into the
    driver's ring buffer (blocking when full), the driver DMAs them to the
    PWM FIFO, and DMA-completion interrupts pull more. Any stall anywhere
    audibly stutters; {!Hw.Pwm_audio.underruns} counts the glitches. *)

let ring_capacity = 32768 (* samples *)
let dma_channel = 0
let dma_batch = 2048 (* samples per DMA transfer *)

type t = {
  board : Hw.Board.t;
  sched : Sched.t;
  ring : int Queue.t;
  space_chan : string;
  mutable dma_active : bool;
  mutable samples_in : int;
}

let pump t =
  if not t.dma_active then begin
    let pwm = t.board.Hw.Board.pwm in
    let want = min dma_batch (min (Queue.length t.ring) (Hw.Pwm_audio.fifo_space pwm)) in
    if want > 0 then begin
      let batch = Array.init want (fun _ -> Queue.pop t.ring) in
      t.dma_active <- true;
      Hw.Dma.start t.board.Hw.Board.dma ~channel:dma_channel
        ~bytes_len:(2 * want)
        ~on_complete:(fun () ->
          ignore (Hw.Pwm_audio.push_samples pwm batch))
    end
  end

let on_dma_irq t () =
  Hw.Dma.ack t.board.Hw.Board.dma ~channel:dma_channel;
  t.dma_active <- false;
  Sched.wake_all t.sched t.space_chan;
  pump t

let create board sched =
  let t =
    {
      board;
      sched;
      ring = Queue.create ();
      space_chan = "audio:space";
      dma_active = false;
      samples_in = 0;
    }
  in
  Sched.register_irq sched (Hw.Irq.Dma_channel dma_channel) (on_dma_irq t);
  (* The PWM "needs data" pacing also pumps, so playback starts without
     waiting for a full batch. *)
  Hw.Pwm_audio.set_drain_listener board.Hw.Board.pwm (fun () -> pump t);
  Hw.Pwm_audio.start board.Hw.Board.pwm;
  t

(* Write signed 16-bit little-endian samples. Blocks while the ring is
   full — the backpressure that paces the decoder thread. *)
let write ctx t data =
  let nsamples = Bytes.length data / 2 in
  let sample i =
    let lo = Bytes.get_uint8 data (2 * i) in
    let hi = Bytes.get_uint8 data ((2 * i) + 1) in
    let v = lo lor (hi lsl 8) in
    if v >= 32768 then v - 65536 else v
  in
  let written = ref 0 in
  let rec step () =
    if !written >= nsamples then begin
      pump t;
      Sched.finish ctx (Abi.R_int (Bytes.length data))
    end
    else begin
      let space = ring_capacity - Queue.length t.ring in
      if space = 0 then begin
        pump t;
        Sched.block ctx ~chan:t.space_chan ~retry:step
      end
      else begin
        let n = min space (nsamples - !written) in
        for i = !written to !written + n - 1 do
          Queue.add (sample i) t.ring
        done;
        Sched.charge ctx (Kcost.audio_per_sample * n);
        written := !written + n;
        t.samples_in <- t.samples_in + n;
        step ()
      end
    end
  in
  if nsamples = 0 then Sched.finish ctx (Abi.R_int 0) else step ()

let queued t = Queue.length t.ring
let samples_in t = t.samples_in
