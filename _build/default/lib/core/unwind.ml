(** Stack unwinder (§5.1).

    The real VOS ports a simplified ARMv8 frame-pointer walker that prints
    raw callsite addresses for offline symbolization. Here the equivalent
    substrate is the shadow stack the user library maintains through
    {!Abi.Frame_mark} effects: the unwinder renders any task's kernel/user
    call chain on demand — the payload of panic dumps and the debug
    monitor's backtrace command. *)

let backtrace task =
  match task.Task.shadow_stack with
  | [] -> [ Printf.sprintf "pid %d (%s): <no frames>" task.Task.pid task.Task.name ]
  | frames ->
      Printf.sprintf "pid %d (%s): call stack, innermost first:" task.Task.pid
        task.Task.name
      :: List.mapi (fun i frame -> Printf.sprintf "  #%d %s" i frame) frames

let render_task task =
  String.concat "\n" (backtrace task) ^ "\n"

let dump_all sched =
  let tasks = Sched.all_tasks sched in
  String.concat "" (List.map render_task tasks)
