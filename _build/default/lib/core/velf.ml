(** VELF — the executable format VOS loads with exec().

    In the real system exec() parses an ELF from the filesystem and copies
    its segments into a fresh address space. Here an executable file is a
    VELF image: a header naming the registered program plus segment sizes,
    padded with deterministic filler to the stated size — so load cost
    (reading the file, mapping its pages) scales with program size exactly
    as for real binaries, while the program body itself is OCaml code found
    in the program registry. *)

let magic = "VELF"
let header_bytes = 16

type t = { prog_name : string; code_bytes : int; data_bytes : int }

let total_bytes t = header_bytes + String.length t.prog_name + t.code_bytes + t.data_bytes

let code_pages t = ((t.code_bytes + t.data_bytes) / Kalloc.page_bytes) + 1

let put32 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 3) ((v lsr 24) land 0xff)

let get32 b off =
  Bytes.get_uint8 b off
  lor (Bytes.get_uint8 b (off + 1) lsl 8)
  lor (Bytes.get_uint8 b (off + 2) lsl 16)
  lor (Bytes.get_uint8 b (off + 3) lsl 24)

(* Header: "VELF" | name_len u32 | code u32 | data u32 | name | filler *)
let build t =
  let name_len = String.length t.prog_name in
  let image = Bytes.make (total_bytes t) '\000' in
  Bytes.blit_string magic 0 image 0 4;
  put32 image 4 name_len;
  put32 image 8 t.code_bytes;
  put32 image 12 t.data_bytes;
  Bytes.blit_string t.prog_name 0 image header_bytes name_len;
  (* deterministic filler standing in for machine code *)
  for i = header_bytes + name_len to Bytes.length image - 1 do
    Bytes.set_uint8 image i ((i * 31) land 0xff)
  done;
  image

let parse image =
  if Bytes.length image < header_bytes then Error "velf: truncated header"
  else if not (String.equal (Bytes.sub_string image 0 4) magic) then
    Error "velf: bad magic"
  else begin
    let name_len = get32 image 4 in
    if Bytes.length image < header_bytes + name_len then
      Error "velf: truncated name"
    else
      Ok
        {
          prog_name = Bytes.sub_string image header_bytes name_len;
          code_bytes = get32 image 8;
          data_bytes = get32 image 12;
        }
  end
