lib/core/vfs.ml: Abi Bufcache Bytes Devfs Errno Fd Fs Hashtbl Kconfig Kcost List Pipe Procfs Sched String Task
