lib/core/panic.ml: Array Buffer Console Hw Int64 Ktrace List Printf Queue Sched Sim Task Unwind
