lib/core/console.ml: Abi Bytes Errno Hw Int64 Kcost Sched String
