lib/core/bufcache.ml: Bytes Fs Hashtbl Hw Kcost List Sched
