lib/core/sem.ml: Abi Errno Hashtbl Kcost Printf Sched
