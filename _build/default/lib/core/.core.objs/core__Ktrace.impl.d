lib/core/ktrace.ml: Array Int64 List Printf
