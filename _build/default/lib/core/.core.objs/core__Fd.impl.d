lib/core/fd.ml: Array Bufcache Bytes Errno Fs Hashtbl Pipe Sched
