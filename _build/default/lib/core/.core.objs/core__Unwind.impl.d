lib/core/unwind.ml: List Printf Sched String Task
