lib/core/kernel.ml: Audio Bufcache Bytes Console Debugmon Devfs Fd Fs Hw Int64 Kalloc Kbd Kconfig List Panic Proc Procfs Sched Sem Sim String Syscall Task Velf Vfs Vm Wm
