lib/core/kalloc.ml: Hashtbl List Printf Stack String
