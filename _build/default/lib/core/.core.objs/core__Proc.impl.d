lib/core/proc.ml: Abi Errno Fd Hashtbl Hw Int64 Kalloc Kconfig Kcost List Option Printf Sched Sim Task Velf Vfs Vm
