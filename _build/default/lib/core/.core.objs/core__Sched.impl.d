lib/core/sched.ml: Abi Array Effect Hashtbl Hw Int64 Kalloc Kconfig Kcost Ktrace List Option Printexc Printf Queue Sim String Task Vm
