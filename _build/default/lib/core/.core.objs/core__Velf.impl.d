lib/core/velf.ml: Bytes Kalloc String
