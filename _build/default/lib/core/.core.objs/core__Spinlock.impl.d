lib/core/spinlock.ml: Hw Int64 Printf
