lib/core/task.ml: Printf Vm
