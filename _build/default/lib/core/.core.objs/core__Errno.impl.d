lib/core/errno.ml: Printf String
