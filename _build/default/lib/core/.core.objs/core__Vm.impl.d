lib/core/vm.ml: Hashtbl Kalloc List Option Printf String
