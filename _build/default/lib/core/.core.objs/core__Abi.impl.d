lib/core/abi.ml: Bytes Effect
