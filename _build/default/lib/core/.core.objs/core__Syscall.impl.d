lib/core/syscall.ml: Abi Console Errno Fd Hw Kconfig Kcost Ktrace Proc Sched Sem Task Vfs Vm
