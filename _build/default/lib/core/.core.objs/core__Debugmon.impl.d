lib/core/debugmon.ml: Int64 List Printf Sched String Task Unwind
