lib/core/wm.ml: Abi Array Effect Hashtbl Hw Kbd Kcost Ktrace List Printf Queue Sched Task
