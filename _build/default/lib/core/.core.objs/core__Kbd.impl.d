lib/core/kbd.ml: Abi Buffer Bytes Errno Hw Int64 Kcost Ktrace List Queue Sched Task
