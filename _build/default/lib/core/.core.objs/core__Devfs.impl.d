lib/core/devfs.ml: Abi Array Audio Buffer Bytes Console Errno Fd Hw Kbd Kcost Ktrace List Queue Sched String Task Vm Wm
