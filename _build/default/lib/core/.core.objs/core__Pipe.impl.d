lib/core/pipe.ml: Abi Bytes Errno Kcost Printf Sched
