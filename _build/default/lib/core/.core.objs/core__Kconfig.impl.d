lib/core/kconfig.ml: Printf
