lib/core/audio.ml: Abi Array Bytes Hw Kcost Queue Sched
