lib/core/kcost.ml:
