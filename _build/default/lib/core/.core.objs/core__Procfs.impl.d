lib/core/procfs.ml: Abi Buffer Bytes Errno Fd Hashtbl Hw Int64 Kalloc Kcost List Option Printf Sched Sim String Task
