(** Virtual memory: per-app address spaces (§3, §4.3).

    The layout matches VOS: user space starts at 0x0 (code+data, then the
    sbrk heap), the stack sits below 16 MB growing down, and mmap'd device
    regions (the framebuffer) are identity-mapped to their bus addresses for
    debugging ease. Kernel mappings use 1 MB blocks and are global; user
    mappings are 4 KB pages.

    Only the user stack is demand-paged (§3): it starts with one page and
    grows on faults. A task that faults repeatedly at the same address is
    terminated by the kernel — [record_fault] implements that policy.

    Page frames come from {!Kalloc}, so address-space size is visible in the
    memory accounting. With CLONE_VM (Prototype 5 threads) several tasks
    share one address space via reference counting. *)

let page_bytes = Kalloc.page_bytes
let stack_top = 0x0100_0000 (* 16 MB *)
let max_stack_pages = 256 (* 1 MB of stack *)
let fb_bus_address = 0x3c10_0000
let fault_kill_threshold = 3

type mapping = {
  map_name : string;
  map_base : int;
  map_bytes : int;
  map_cached : bool;
}

type t = {
  asid : int;
  owner_tag : string;
  kalloc : Kalloc.t;
  mutable code_pages : int;
  mutable brk : int;  (** heap break, bytes from heap base *)
  heap_base : int;
  mutable stack_pages : int;
  mutable mappings : mapping list;
  mutable refcount : int;  (** CLONE_VM sharers *)
  faults : (int, int) Hashtbl.t;  (** addr -> consecutive fault count *)
  mutable total_faults : int;
}

let next_asid = ref 0

let heap_pages t = (t.brk + page_bytes - 1) / page_bytes

let resident_pages t = t.code_pages + heap_pages t + t.stack_pages

let alloc_frames t n =
  match Kalloc.alloc_pages t.kalloc ~owner:t.owner_tag n with
  | Some _ -> Ok ()
  | None -> Error "vm: out of memory"

let free_frames t n =
  (* Frames are interchangeable; release any n owned by this space. *)
  let released = ref 0 in
  let to_free = ref [] in
  Hashtbl.iter
    (fun frame tag ->
      if !released < n && String.equal tag t.owner_tag then begin
        to_free := frame :: !to_free;
        incr released
      end)
    t.kalloc.Kalloc.allocated;
  List.iter (Kalloc.free_page t.kalloc) !to_free

let create kalloc ~code_pages =
  incr next_asid;
  let asid = !next_asid in
  let t =
    {
      asid;
      owner_tag = Printf.sprintf "as%d" asid;
      kalloc;
      code_pages = 0;
      brk = 0;
      heap_base = 0;
      stack_pages = 0;
      mappings = [];
      refcount = 1;
      faults = Hashtbl.create 8;
      total_faults = 0;
    }
  in
  (* demand paging (P3+): map the code and exactly one stack page *)
  match alloc_frames t (code_pages + 1) with
  | Ok () ->
      t.code_pages <- code_pages;
      t.stack_pages <- 1;
      Ok t
  | Error e -> Error e

let share t =
  t.refcount <- t.refcount + 1;
  t

(* Eager copy, the paper's fork (§6.2): every resident page is duplicated. *)
let fork_copy t =
  let pages = resident_pages t in
  match create t.kalloc ~code_pages:t.code_pages with
  | Error e -> Error e
  | Ok child -> (
      (* match heap and stack shape *)
      let extra = heap_pages t + (t.stack_pages - child.stack_pages) in
      match alloc_frames child extra with
      | Error e -> Error e
      | Ok () ->
          child.brk <- t.brk;
          child.stack_pages <- t.stack_pages;
          child.mappings <- t.mappings;
          Ok (child, pages))

let sbrk t delta =
  let old_brk = t.brk in
  let new_brk = t.brk + delta in
  if new_brk < 0 then Error "vm: negative break"
  else begin
    let old_pages = heap_pages t in
    let new_pages = (new_brk + page_bytes - 1) / page_bytes in
    if new_pages > old_pages then
      match alloc_frames t (new_pages - old_pages) with
      | Ok () ->
          t.brk <- new_brk;
          Ok (old_brk, new_pages - old_pages)
      | Error e -> Error e
    else begin
      if new_pages < old_pages then free_frames t (old_pages - new_pages);
      t.brk <- new_brk;
      Ok (old_brk, 0)
    end
  end

(* A stack fault: grow by one page, or report why the task must die. *)
let fault_stack t ~addr =
  t.total_faults <- t.total_faults + 1;
  let count = 1 + Option.value ~default:0 (Hashtbl.find_opt t.faults addr) in
  Hashtbl.replace t.faults addr count;
  if count >= fault_kill_threshold then `Kill_repeated_fault
  else if t.stack_pages >= max_stack_pages then `Kill_stack_overflow
  else begin
    match alloc_frames t 1 with
    | Ok () ->
        t.stack_pages <- t.stack_pages + 1;
        `Grown
    | Error _ -> `Kill_oom
  end

let total_faults t = t.total_faults

let add_mapping t ~name ~bytes ~cached =
  let base =
    match name with
    | "fb" -> fb_bus_address (* identity map, as §4.3 describes *)
    | _ ->
        (* other mappings stack above the framebuffer window *)
        List.fold_left
          (fun top m -> max top (m.map_base + m.map_bytes))
          (fb_bus_address + 0x0100_0000)
          t.mappings
  in
  let m = { map_name = name; map_base = base; map_bytes = bytes; map_cached = cached } in
  t.mappings <- m :: t.mappings;
  m

let find_mapping t ~name =
  List.find_opt (fun m -> String.equal m.map_name name) t.mappings

let destroy t =
  t.refcount <- t.refcount - 1;
  if t.refcount = 0 then begin
    let pages = resident_pages t in
    free_frames t pages;
    t.code_pages <- 0;
    t.brk <- 0;
    t.stack_pages <- 0
  end

let refcount t = t.refcount
let asid t = t.asid
