(** The scheduler and trap machinery — the center of the kernel.

    Tasks are OCaml computations running under an effect handler. When a
    task performs {!Abi.Sys} the handler captures the one-shot continuation
    and runs the syscall dispatcher; when it performs {!Abi.Burn} the task
    occupies its core for that many cycles of simulated time, preemptible
    by the per-core timer tick. All kernel work is accounted in cycles and
    applied as simulated delays, so every latency the benchmarks observe is
    the composition of these charges plus genuine queueing.

    Structure per the paper: a single run queue suffices up to Prototype 4
    (one core); Prototype 5 gives each core its own queue (§4.5), with idle
    cores stealing work so a multiprogrammed load scales (Figure 10). IRQs
    from devices are routed to core 0; each core receives its own generic
    timer tick. *)

type ctx = {
  sched : t;
  task : Task.t;
  call : Abi.syscall;
  mutable charge_cycles : int;
  mutable charge_io : int64;  (** device time in ns, added on top of CPU *)
  kont : (Abi.ret, unit) Effect.Deep.continuation;
  mutable done_ : bool;
}

and core_state = {
  core_id : int;
  queue : Task.t Queue.t;
  mutable current : Task.t option;
  mutable burn_started : int64;
  mutable burn_until : int64;
  mutable burn_event : Sim.Engine.event_id option;
  mutable burn_after : (unit -> unit) option;
  mutable busy_ns : int64;
  mutable io_busy_ns : int64;
  mutable switches : int;
}

and t = {
  board : Hw.Board.t;
  config : Kconfig.t;
  kalloc : Kalloc.t;
  trace : Ktrace.t;
  cores : core_state array;
  active_cores : int;
  tasks : (int, Task.t) Hashtbl.t;
  mutable dispatch : ctx -> unit;
  mutable irq_drivers : (Hw.Irq.line * (unit -> unit)) list;
  wait_chans : (string, (Task.t * (unit -> unit)) Queue.t) Hashtbl.t;
  frame_counts : (int, int) Hashtbl.t;
      (** frames presented per pid; survives trace-ring wraparound *)
  mutable on_task_exit : (Task.t -> unit) list;
  mutable on_panic : (int -> unit) option;  (** core id of the FIQ *)
  mutable frame_hook : (Task.t -> string -> bool) option;
      (** debug monitor: stop on frame entry? *)
  mutable syscall_hook : (Task.t -> string -> bool) option;
      (** debug monitor: stop on syscall entry? *)
  mutable tick_interval_ms : int;
  mutable started : bool;
}

let engine t = t.board.Hw.Board.engine
let now t = Sim.Engine.now (engine t)
let cyc t n = Hw.Board.cycles_to_ns t.board n

let create board config kalloc =
  let active =
    if config.Kconfig.multicore then board.Hw.Board.platform.Hw.Board.num_cores
    else 1
  in
  let t =
    {
      board;
      config;
      kalloc;
      trace = Ktrace.create ();
      cores =
        Array.init board.Hw.Board.platform.Hw.Board.num_cores (fun core_id ->
            {
              core_id;
              queue = Queue.create ();
              current = None;
              burn_started = 0L;
              burn_until = 0L;
              burn_event = None;
              burn_after = None;
              busy_ns = 0L;
              io_busy_ns = 0L;
              switches = 0;
            });
      active_cores = active;
      tasks = Hashtbl.create 64;
      dispatch = (fun _ -> invalid_arg "sched: no syscall dispatcher installed");
      irq_drivers = [];
      wait_chans = Hashtbl.create 32;
      frame_counts = Hashtbl.create 16;
      on_task_exit = [];
      on_panic = None;
      frame_hook = None;
      syscall_hook = None;
      tick_interval_ms = 1;
      started = false;
    }
  in
  t

let trace_emit t ev =
  (match ev with
  | Ktrace.Frame_present pid ->
      Hashtbl.replace t.frame_counts pid
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.frame_counts pid))
  | _ -> ());
  Ktrace.emit t.trace ~ts_ns:(now t) ~core:0 ev

let trace_emit_core t ~core ev = Ktrace.emit t.trace ~ts_ns:(now t) ~core ev

let is_zombie task = task.Task.state = Task.Zombie

(* ---- busy accounting ---- *)

let add_busy core ns =
  core.busy_ns <- Int64.add core.busy_ns ns

let add_io_busy core ns = core.io_busy_ns <- Int64.add core.io_busy_ns ns

(* ---- burns: occupying a core for simulated time ---- *)

let core_of_task t task =
  match task.Task.state with
  | Task.Running c -> t.cores.(c)
  | Task.Runnable | Task.Blocked _ | Task.Zombie ->
      invalid_arg
        (Printf.sprintf "sched: task %d (%s) not running" task.Task.pid
           (Task.state_name task))

(* Run [after] once [task] has burned [ns] of CPU on its current core. *)
let rec start_burn t task ns after =
  let core = core_of_task t task in
  if Int64.compare ns 1L < 0 then after ()
  else begin
    assert (core.burn_event = None);
    let start = now t in
    core.burn_started <- start;
    core.burn_until <- Int64.add start ns;
    core.burn_after <- Some after;
    core.burn_event <-
      Some
        (Sim.Engine.schedule_at (engine t) core.burn_until (fun () ->
             core.burn_event <- None;
             core.burn_after <- None;
             let elapsed = Int64.sub (now t) core.burn_started in
             add_busy core elapsed;
             task.Task.cpu_ns <- Int64.add task.Task.cpu_ns elapsed;
             if task.Task.killed then raise_exit t task (-1) else after ()))
  end

(* Interrupt handlers steal cycles from whatever burn is in flight. *)
and steal_cycles t core ns =
  match core.burn_event with
  | None -> add_busy core ns
  | Some id ->
      Sim.Engine.cancel (engine t) id;
      core.burn_until <- Int64.add core.burn_until ns;
      let after = Option.get core.burn_after in
      let task = Option.get core.current in
      core.burn_event <-
        Some
          (Sim.Engine.schedule_at (engine t) core.burn_until (fun () ->
               core.burn_event <- None;
               core.burn_after <- None;
               let elapsed = Int64.sub (now t) core.burn_started in
               add_busy core elapsed;
               task.Task.cpu_ns <- Int64.add task.Task.cpu_ns elapsed;
               if task.Task.killed then raise_exit t task (-1) else after ()))

(* ---- run queues ---- *)

and pick_target_core t task =
  ignore task;
  if t.active_cores = 1 then t.cores.(0)
  else begin
    (* prefer an idle core, else the shortest queue *)
    let best = ref t.cores.(0) in
    let score c =
      (match c.current with None -> 0 | Some _ -> 1000)
      + Queue.length c.queue
    in
    for i = 1 to t.active_cores - 1 do
      if score t.cores.(i) < score !best then best := t.cores.(i)
    done;
    !best
  end

and enqueue_task t task =
  assert (task.Task.state = Task.Runnable);
  assert (task.Task.resume <> None);
  let core = pick_target_core t task in
  Queue.add task core.queue;
  if core.current = None && core.burn_event = None then schedule_core t core

(* Steal a task from the back of the longest other queue. *)
and try_steal t thief =
  if t.active_cores = 1 then None
  else begin
    let victim = ref None in
    for i = 0 to t.active_cores - 1 do
      let c = t.cores.(i) in
      if c.core_id <> thief.core_id && Queue.length c.queue > 0 then
        match !victim with
        | Some v when Queue.length v.queue >= Queue.length c.queue -> ()
        | Some _ | None -> victim := Some c
    done;
    match !victim with
    | Some v -> Queue.take_opt v.queue
    | None -> None
  end

and schedule_core t core =
  if core.current = None && core.burn_event = None then begin
    let next =
      match Queue.take_opt core.queue with
      | Some task -> Some task
      | None -> try_steal t core
    in
    match next with
    | None -> () (* WFI idle *)
    | Some task ->
        if is_zombie task || task.Task.resume = None then schedule_core t core
        else begin
          core.current <- Some task;
          core.switches <- core.switches + 1;
          task.Task.state <- Task.Running core.core_id;
          task.Task.quantum_left <- Task.default_quantum;
          let resume = Option.get task.Task.resume in
          task.Task.resume <- None;
          trace_emit_core t ~core:core.core_id
            (Ktrace.Ctx_switch (0, task.Task.pid));
          (* the context-switch cost precedes the task's first instruction *)
          let switch_ns = cyc t (Kcost.ctx_switch + Kcost.sched_pick) in
          add_busy core switch_ns;
          ignore
            (Sim.Engine.schedule_after (engine t) switch_ns (fun () ->
                 if task.Task.killed && task.Task.kind = Task.User then
                   raise_exit t task (-1)
                 else resume ()))
        end
  end

(* Release the core a task occupies (it blocked or exited). *)
and release_core t task =
  match task.Task.state with
  | Task.Running c ->
      let core = t.cores.(c) in
      (match core.burn_event with
      | Some id ->
          (* should not happen: blocking always occurs between burns *)
          Sim.Engine.cancel (engine t) id;
          core.burn_event <- None;
          core.burn_after <- None
      | None -> ());
      core.current <- None;
      schedule_core t core
  | Task.Runnable | Task.Blocked _ | Task.Zombie -> ()

(* ---- task exit ---- *)

and raise_exit t task code =
  (* Terminate from within the task's execution context: run teardown and
     hand the core over. The task's continuation is abandoned. *)
  do_exit t task code

and do_exit t task code =
  if not (is_zombie task) then begin
    task.Task.exit_code <- code;
    let was_running = match task.Task.state with Task.Running _ -> true | Task.Runnable | Task.Blocked _ | Task.Zombie -> false in
    List.iter (fun hook -> hook task) t.on_task_exit;
    (match task.Task.vm with
    | Some vm ->
        Vm.destroy vm;
        task.Task.vm <- None
    | None -> ());
    (* reparent children to init (pid 1) *)
    List.iter
      (fun child_pid ->
        match Hashtbl.find_opt t.tasks child_pid with
        | Some child -> child.Task.parent <- 1
        | None -> ())
      task.Task.children;
    let charge = cyc t Kcost.exit_teardown in
    let finish_exit () =
      if was_running then begin
        (match task.Task.state with
        | Task.Running c ->
            t.cores.(c).current <- None;
            task.Task.state <- Task.Zombie;
            wake_all t (Printf.sprintf "exit:%d" task.Task.pid);
            wake_all t (Printf.sprintf "children:%d" task.Task.parent);
            schedule_core t t.cores.(c)
        | Task.Runnable | Task.Blocked _ | Task.Zombie -> ())
      end
      else begin
        task.Task.state <- Task.Zombie;
        wake_all t (Printf.sprintf "exit:%d" task.Task.pid);
        wake_all t (Printf.sprintf "children:%d" task.Task.parent)
      end
    in
    match task.Task.state with
    | Task.Running _ when Int64.compare charge 0L > 0 ->
        ignore (Sim.Engine.schedule_after (engine t) charge finish_exit)
    | Task.Running _ | Task.Runnable | Task.Blocked _ | Task.Zombie ->
        finish_exit ()
  end

(* ---- wait channels ---- *)

and chan_queue t chan =
  match Hashtbl.find_opt t.wait_chans chan with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.wait_chans chan q;
      q

and wake_all t chan =
  match Hashtbl.find_opt t.wait_chans chan with
  | None -> ()
  | Some q ->
      let entries = Queue.to_seq q |> List.of_seq in
      Queue.clear q;
      List.iter
        (fun (task, retry) ->
          if not (is_zombie task) then begin
            task.Task.state <- Task.Runnable;
            task.Task.resume <- Some retry;
            trace_emit t (Ktrace.Sched_wakeup task.Task.pid);
            enqueue_task t task
          end)
        entries

let wake_one t chan =
  match Hashtbl.find_opt t.wait_chans chan with
  | None -> false
  | Some q -> (
      match Queue.take_opt q with
      | None -> false
      | Some (task, retry) ->
          if is_zombie task then false
          else begin
            task.Task.state <- Task.Runnable;
            task.Task.resume <- Some retry;
            trace_emit t (Ktrace.Sched_wakeup task.Task.pid);
            enqueue_task t task;
            true
          end)

(* ---- the syscall context API (used by the dispatcher in Syscall) ---- *)

let charge ctx cycles = ctx.charge_cycles <- ctx.charge_cycles + cycles

let charge_io ctx ns = ctx.charge_io <- Int64.add ctx.charge_io ns

let finish ctx ret =
  assert (not ctx.done_);
  ctx.done_ <- true;
  let t = ctx.sched in
  let task = ctx.task in
  let cpu_cycles =
    ctx.charge_cycles
    + if task.Task.kind = Task.User then Kcost.syscall_exit else 0
  in
  let total = Int64.add (cyc t cpu_cycles) ctx.charge_io in
  (match task.Task.state with
  | Task.Running c ->
      if Int64.compare ctx.charge_io 0L > 0 then
        add_io_busy t.cores.(c) ctx.charge_io
  | Task.Runnable | Task.Blocked _ | Task.Zombie -> ());
  start_burn t task total (fun () ->
      trace_emit t
        (Ktrace.Syscall_exit (task.Task.pid, Abi.syscall_name ctx.call));
      Effect.Deep.continue ctx.kont ret)

(* Block the calling task on [chan]; [retry] re-enters the syscall path
   when the channel is woken. *)
let block ctx ~chan ~retry =
  let t = ctx.sched in
  let task = ctx.task in
  (match task.Task.state with
  | Task.Running _ -> ()
  | Task.Runnable | Task.Blocked _ | Task.Zombie ->
      invalid_arg "sched: blocking a task that is not running");
  let q = chan_queue t chan in
  release_core t task;
  task.Task.state <- Task.Blocked chan;
  Queue.add (task, retry) q

(* Park the task and deliver [ret] after [delay_ns] (sleep, timed IO). *)
let finish_after ctx ~delay_ns ret =
  let t = ctx.sched in
  let task = ctx.task in
  release_core t task;
  task.Task.state <- Task.Blocked "sleep";
  ignore
    (Sim.Engine.schedule_after (engine t) delay_ns (fun () ->
         if not (is_zombie task) then begin
           task.Task.state <- Task.Runnable;
           task.Task.resume <- Some (fun () -> finish ctx ret);
           enqueue_task t task
         end))

(* ---- running tasks under the effect handler ---- *)

(* Debug monitor stop: park the running task on its debug channel;
   Debugmon.resume wakes it. *)
let park_for_debug t task thunk =
  let chan = Printf.sprintf "debug:%d" task.Task.pid in
  let q = chan_queue t chan in
  release_core t task;
  task.Task.state <- Task.Blocked chan;
  Queue.add (task, thunk) q

let rec run_computation t task main () =
  let open Effect.Deep in
  match_with
    (fun () ->
      let code = main () in
      code)
    ()
    {
      retc = (fun code -> do_exit t task code);
      exnc =
        (fun exn ->
          trace_emit t
            (Ktrace.Custom
               (Printf.sprintf "task %d (%s) uncaught exception: %s"
                  task.Task.pid task.Task.name (Printexc.to_string exn)));
          do_exit t task (-2));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Abi.Sys call ->
              Some
                (fun (k : (a, unit) continuation) ->
                  handle_trap t task call
                    (k : (Abi.ret, unit) continuation))
          | Abi.Burn cycles ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let ns = cyc t (max 1 cycles) in
                  start_burn t task ns (fun () -> continue k ()))
          | Abi.Frame_mark label ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if String.equal label "" then begin
                    (match task.Task.shadow_stack with
                    | [] -> ()
                    | _ :: rest -> task.Task.shadow_stack <- rest);
                    continue k ()
                  end
                  else begin
                    task.Task.shadow_stack <- label :: task.Task.shadow_stack;
                    match t.frame_hook with
                    | Some hook when hook task label ->
                        park_for_debug t task (fun () -> continue k ())
                    | Some _ | None -> continue k ()
                  end)
          | _ -> None);
    }

and handle_trap t task call k =
  task.Task.syscall_count <- task.Task.syscall_count + 1;
  trace_emit t (Ktrace.Syscall_enter (task.Task.pid, Abi.syscall_name call));
  let entry_cycles =
    if task.Task.kind = Task.User then
      Kcost.syscall_entry + Kcost.syscall_dispatch
    else 300 (* kernel threads call in directly *)
  in
  let ctx =
    {
      sched = t;
      task;
      call;
      charge_cycles = entry_cycles;
      charge_io = 0L;
      kont = k;
      done_ = false;
    }
  in
  match t.syscall_hook with
  | Some hook when hook task (Abi.syscall_name call) ->
      park_for_debug t task (fun () -> t.dispatch ctx)
  | Some _ | None -> t.dispatch ctx

(* ---- spawning ---- *)

let spawn t ~name ~kind ?vm ?(parent = 0) main =
  let task = Task.create ~name ~kind ?vm ~parent () in
  Hashtbl.replace t.tasks task.Task.pid task;
  (match Hashtbl.find_opt t.tasks parent with
  | Some p -> p.Task.children <- task.Task.pid :: p.Task.children
  | None -> ());
  task.Task.resume <- Some (run_computation t task main);
  enqueue_task t task;
  task

(* Replace the running task's computation (exec). The old continuation is
   abandoned; the new main starts when the task is next scheduled. *)
let replace_computation t task main =
  task.Task.resume <- Some (run_computation t task main);
  task.Task.state <- Task.Runnable;
  enqueue_task t task

(* exec(2): burn the accumulated syscall charge, abandon the trapping
   continuation, and restart the task with [main]. *)
let exec_replace ctx main =
  assert (not ctx.done_);
  ctx.done_ <- true;
  let t = ctx.sched in
  let task = ctx.task in
  let total = Int64.add (cyc t ctx.charge_cycles) ctx.charge_io in
  start_burn t task total (fun () ->
      match task.Task.state with
      | Task.Running c ->
          t.cores.(c).current <- None;
          task.Task.state <- Task.Runnable;
          task.Task.resume <- Some (run_computation t task main);
          task.Task.shadow_stack <- [];
          enqueue_task t task;
          schedule_core t t.cores.(c)
      | Task.Runnable | Task.Blocked _ | Task.Zombie -> ())

(* Kill a task that is not currently on a CPU: pull it out of whatever
   wait channel holds it and terminate it. Running tasks die at their next
   preemption point via the [killed] flag. *)
let force_kill t task =
  task.Task.killed <- true;
  match task.Task.state with
  | Task.Running _ -> () (* dies at the next burn completion *)
  | Task.Zombie -> ()
  | Task.Runnable | Task.Blocked _ ->
      (* remove from wait channels; queued Runnable entries are skipped by
         schedule_core once the task is a zombie *)
      Hashtbl.iter
        (fun _ q ->
          let entries = Queue.to_seq q |> List.of_seq in
          Queue.clear q;
          List.iter
            (fun ((waiting, _) as entry) ->
              if waiting.Task.pid <> task.Task.pid then Queue.add entry q)
            entries)
        t.wait_chans;
      do_exit t task (-1)

(* ---- timer ticks and preemption ---- *)

let preempt t core =
  match (core.current, core.burn_event) with
  | Some task, Some id ->
      Sim.Engine.cancel (engine t) id;
      let elapsed = Int64.sub (now t) core.burn_started in
      add_busy core elapsed;
      task.Task.cpu_ns <- Int64.add task.Task.cpu_ns elapsed;
      let remaining = Int64.sub core.burn_until (now t) in
      let after = Option.get core.burn_after in
      core.burn_event <- None;
      core.burn_after <- None;
      core.current <- None;
      task.Task.state <- Task.Runnable;
      task.Task.resume <-
        Some (fun () -> start_burn t task remaining after);
      (* go to the back of this core's own queue *)
      Queue.add task core.queue;
      schedule_core t core
  | Some _, None | None, _ -> ()

let rec tick t core_id =
  let core = t.cores.(core_id) in
  steal_cycles t core (cyc t Kcost.timer_tick_work);
  (match core.current with
  | Some task ->
      task.Task.quantum_left <- task.Task.quantum_left - 1;
      if
        task.Task.quantum_left <= 0
        && (Queue.length core.queue > 0
           || (t.active_cores > 1 && try_steal_peek t core))
      then preempt t core
  | None -> schedule_core t core);
  Hw.Timer.arm_core_timer t.board.Hw.Board.timer ~core:core_id
    ~delta_ns:(Sim.Engine.ms t.tick_interval_ms)

and try_steal_peek t thief =
  let found = ref false in
  for i = 0 to t.active_cores - 1 do
    let c = t.cores.(i) in
    if c.core_id <> thief.core_id && Queue.length c.queue > 0 then found := true
  done;
  !found

(* ---- interrupts ---- *)

let register_irq t line handler =
  t.irq_drivers <- (line, handler) :: t.irq_drivers;
  Hw.Intc.route t.board.Hw.Board.intc line ~core:0

let on_irq t core_id line =
  let core = t.cores.(core_id) in
  trace_emit_core t ~core:core_id (Ktrace.Irq_enter (Hw.Irq.describe line));
  steal_cycles t core (cyc t (Kcost.irq_entry + Kcost.irq_exit));
  (match line with
  | Hw.Irq.Core_timer c -> tick t c
  | Hw.Irq.Fiq_button -> (
      match t.on_panic with Some f -> f core_id | None -> ())
  | Hw.Irq.Sys_timer | Hw.Irq.Uart_rx | Hw.Irq.Usb_hc | Hw.Irq.Dma_channel _
  | Hw.Irq.Gpio_bank | Hw.Irq.Sd_card -> (
      match
        List.find_opt (fun (l, _) -> Hw.Irq.equal l line) t.irq_drivers
      with
      | Some (_, handler) -> handler ()
      | None ->
          trace_emit t
            (Ktrace.Custom ("spurious irq " ^ Hw.Irq.describe line))));
  trace_emit_core t ~core:core_id (Ktrace.Irq_exit (Hw.Irq.describe line))

(* Install interrupt entry points and start ticking. *)
let start t =
  if not t.started then begin
    t.started <- true;
    for c = 0 to Array.length t.cores - 1 do
      Hw.Intc.set_handler t.board.Hw.Board.intc ~core:c (fun line ->
          on_irq t c line)
    done;
    for c = 0 to t.active_cores - 1 do
      Hw.Timer.arm_core_timer t.board.Hw.Board.timer ~core:c
        ~delta_ns:(Sim.Engine.ms t.tick_interval_ms)
    done
  end

(* ---- inspection ---- *)

let task_by_pid t pid = Hashtbl.find_opt t.tasks pid

let all_tasks t =
  Hashtbl.fold (fun _ task acc -> task :: acc) t.tasks []
  |> List.sort (fun a b -> compare a.Task.pid b.Task.pid)

let reap t task =
  assert (is_zombie task);
  Hashtbl.remove t.tasks task.Task.pid;
  (match Hashtbl.find_opt t.tasks task.Task.parent with
  | Some p ->
      p.Task.children <-
        List.filter (fun pid -> pid <> task.Task.pid) p.Task.children
  | None -> ())

let frames_presented t ~pid =
  Option.value ~default:0 (Hashtbl.find_opt t.frame_counts pid)

let core_busy_ns t core_id = t.cores.(core_id).busy_ns
let core_io_ns t core_id = t.cores.(core_id).io_busy_ns

let utilization t ~core_id ~window_ns =
  if Int64.compare window_ns 0L <= 0 then 0.0
  else Int64.to_float t.cores.(core_id).busy_ns /. Int64.to_float window_ns

let run_until t time = Sim.Engine.run (engine t) ~until:time ()
