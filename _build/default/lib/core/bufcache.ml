(** The buffer cache, inherited from xv6: fixed-size, single-block
    operations only (§5.2). That design suffices for xv6fs on ramdisk but
    bottlenecks FAT32's multi-block accesses — so Prototype 5 adds a bypass
    that sends range reads straight to the SD driver, cutting large-file
    load latency 2–3x. Both paths live here; the bypass is switched by
    {!Kconfig.range_io_bypass} so the ablation bench can compare them.

    Time accounting: CPU cycles are charged to the current syscall context
    ([with_ctx] scopes it); device time (the SD polling cost) is charged as
    IO time. A ramdisk backing has no device time — only copy cycles. *)

type backing =
  | Ram of Bytes.t  (** the ramdisk image; sector-addressed *)
  | Card of Hw.Sd.t * int  (** SD card + partition start lba *)
  | Usb_msd of Hw.Usb.t  (** USB mass-storage bulk transfers *)

type t = {
  backing : backing;
  board : Hw.Board.t;
  block_sectors : int;  (** cached unit: 2 for xv6fs (1 KB), 1 for FAT *)
  capacity : int;  (** blocks held; xv6's NBUF is 30 *)
  cache : (int, Bytes.t) Hashtbl.t;
  mutable lru : int list;  (** most recent first *)
  mutable ctx : Sched.ctx option;
  mutable hits : int;
  mutable misses : int;
  mutable range_reads : int;
}

let create ~board ~backing ~block_sectors ?(capacity = 30) () =
  {
    backing;
    board;
    block_sectors;
    capacity;
    cache = Hashtbl.create 64;
    lru = [];
    ctx = None;
    hits = 0;
    misses = 0;
    range_reads = 0;
  }

let with_ctx t ctx f =
  let saved = t.ctx in
  t.ctx <- Some ctx;
  let finally () = t.ctx <- saved in
  match f () with
  | result ->
      finally ();
      result
  | exception e ->
      finally ();
      raise e

let charge_cycles t cycles =
  match t.ctx with Some ctx -> Sched.charge ctx cycles | None -> ()

let charge_io t ns =
  match t.ctx with
  | Some ctx -> Sched.charge_io ctx (Hw.Board.io_ns t.board ns)
  | None -> ()

let block_bytes t = t.block_sectors * Fs.Blockdev.sector_bytes

(* raw device access in sectors *)
let device_read t ~lba ~count =
  match t.backing with
  | Ram image ->
      charge_cycles t (Kcost.copy_cycles ~bytes:(count * Fs.Blockdev.sector_bytes));
      Bytes.sub image (lba * Fs.Blockdev.sector_bytes)
        (count * Fs.Blockdev.sector_bytes)
  | Card (sd, first) -> (
      match Hw.Sd.read sd ~lba:(first + lba) ~count with
      | Ok (data, cost) ->
          charge_io t cost;
          data
      | Error e -> invalid_arg e)
  | Usb_msd usb -> (
      match Hw.Usb.msd_read usb ~lba ~count with
      | Ok (data, cost) ->
          charge_io t cost;
          data
      | Error e -> invalid_arg e)

let device_write t ~lba data =
  match t.backing with
  | Ram image ->
      charge_cycles t (Kcost.copy_cycles ~bytes:(Bytes.length data));
      Bytes.blit data 0 image (lba * Fs.Blockdev.sector_bytes) (Bytes.length data)
  | Card (sd, first) -> (
      match Hw.Sd.write sd ~lba:(first + lba) ~data with
      | Ok cost -> charge_io t cost
      | Error e -> invalid_arg e)
  | Usb_msd usb -> (
      match Hw.Usb.msd_write usb ~lba ~data with
      | Ok cost -> charge_io t cost
      | Error e -> invalid_arg e)

let touch_lru t n =
  t.lru <- n :: List.filter (fun m -> m <> n) t.lru

let evict_if_full t =
  if Hashtbl.length t.cache >= t.capacity then begin
    match List.rev t.lru with
    | [] -> ()
    | victim :: _ ->
        (* write-through cache: eviction is free *)
        Hashtbl.remove t.cache victim;
        t.lru <- List.filter (fun m -> m <> victim) t.lru
  end

(* Single-block read through the cache (block number in cache units). *)
let bread t n =
  charge_cycles t Kcost.bufcache_hit;
  match Hashtbl.find_opt t.cache n with
  | Some data ->
      t.hits <- t.hits + 1;
      touch_lru t n;
      Bytes.copy data
  | None ->
      t.misses <- t.misses + 1;
      charge_cycles t Kcost.bufcache_miss_extra;
      let data = device_read t ~lba:(n * t.block_sectors) ~count:t.block_sectors in
      evict_if_full t;
      Hashtbl.replace t.cache n (Bytes.copy data);
      touch_lru t n;
      data

(* Write-through single-block write. *)
let bwrite t n data =
  assert (Bytes.length data = block_bytes t);
  charge_cycles t Kcost.bufcache_hit;
  evict_if_full t;
  Hashtbl.replace t.cache n (Bytes.copy data);
  touch_lru t n;
  device_write t ~lba:(n * t.block_sectors) data

(* The §5.2 bypass: a multi-sector read straight to the device, skipping
   the cache entirely (and so paying the command overhead only once). *)
let read_range_direct t ~lba ~count =
  t.range_reads <- t.range_reads + 1;
  device_read t ~lba ~count

(* The pre-optimization path for ranges: sector-by-sector through the
   cache, one device command each on a miss. *)
let read_range_cached t ~lba ~count =
  assert (t.block_sectors = 1);
  let out = Bytes.create (count * Fs.Blockdev.sector_bytes) in
  for i = 0 to count - 1 do
    let sector = bread t (lba + i) in
    Bytes.blit sector 0 out (i * Fs.Blockdev.sector_bytes)
      Fs.Blockdev.sector_bytes
  done;
  out

let write_range t ~lba data =
  (* keep cached copies coherent, then push to the device in one command *)
  let sectors = Bytes.length data / Fs.Blockdev.sector_bytes in
  if t.block_sectors = 1 then
    for i = 0 to sectors - 1 do
      if Hashtbl.mem t.cache (lba + i) then
        Hashtbl.replace t.cache (lba + i)
          (Bytes.sub data (i * Fs.Blockdev.sector_bytes) Fs.Blockdev.sector_bytes)
    done;
  device_write t ~lba data

(* ---- filesystem adapters ---- *)

let xv6_io t : Fs.Xv6fs.io =
  assert (t.block_sectors = 2);
  { Fs.Xv6fs.bread = (fun n -> bread t n); bwrite = (fun n b -> bwrite t n b) }

let fat_io t ~range_bypass : Fs.Fat32.io =
  assert (t.block_sectors = 1);
  let read ~lba ~count =
    if count = 1 then bread t lba
    else if range_bypass then read_range_direct t ~lba ~count
    else read_range_cached t ~lba ~count
  in
  let write ~lba ~data =
    if Bytes.length data = Fs.Blockdev.sector_bytes then bwrite t lba data
    else write_range t ~lba data
  in
  { Fs.Fat32.read; write }

let hits t = t.hits
let misses t = t.misses
let range_reads t = t.range_reads
