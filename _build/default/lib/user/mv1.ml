(** MV1 — the video codec standing in for MPEG-1 (see DESIGN.md).

    Real intra-frame transform coding with MPEG's actual machinery at
    MPEG-1's actual layout: YUV420 planes split into 8×8 blocks, a 2-D
    DCT-II, uniform quantization with per-coefficient weights, zigzag
    scan, and run-length entropy coding. Decode performs the genuine
    inverse pipeline, so playback FPS is driven by per-block IDCT work
    plus the YUV→RGB conversion of {!Yuv} — reproducing the §5.2 SIMD
    experiment end to end.

    Cycle costs: an 8×8 IDCT+dequant on the A53 costs
    [cycles_per_block ~simd:false] scalar and [~simd:true] with NEON. *)

let cycles_per_block ~simd = if simd then 3_340 else 13_000

(* fixed per-frame work: bitstream/container parsing, buffer management,
   rate control — the share that does not scale with block count *)
let cycles_per_frame_fixed = 12_400_000

let magic = "MV1 "

type frame = {
  y_plane : int array;
  u_plane : int array;
  v_plane : int array;
}

type t = {
  width : int;  (** luma width; multiple of 16 *)
  height : int;
  fps : int;
  frames : Bytes.t array;  (** encoded payload per frame *)
}

(* ---- 8x8 DCT ---- *)

let pi = 4.0 *. atan 1.0

let dct_matrix =
  Array.init 8 (fun k ->
      Array.init 8 (fun n ->
          let ck = if k = 0 then sqrt (1.0 /. 8.0) else sqrt (2.0 /. 8.0) in
          ck *. cos ((2.0 *. float_of_int n +. 1.0) *. float_of_int k *. pi /. 16.0)))

(* out = C * block * C^T *)
let fdct block out =
  let tmp = Array.make 64 0.0 in
  for k = 0 to 7 do
    for x = 0 to 7 do
      let s = ref 0.0 in
      for n = 0 to 7 do
        s := !s +. (dct_matrix.(k).(n) *. float_of_int block.((n * 8) + x))
      done;
      tmp.((k * 8) + x) <- !s
    done
  done;
  for k = 0 to 7 do
    for l = 0 to 7 do
      let s = ref 0.0 in
      for x = 0 to 7 do
        s := !s +. (tmp.((k * 8) + x) *. dct_matrix.(l).(x))
      done;
      out.((k * 8) + l) <- !s
    done
  done

let idct coeffs out =
  let tmp = Array.make 64 0.0 in
  for n = 0 to 7 do
    for l = 0 to 7 do
      let s = ref 0.0 in
      for k = 0 to 7 do
        s := !s +. (dct_matrix.(k).(n) *. coeffs.((k * 8) + l))
      done;
      tmp.((n * 8) + l) <- !s
    done
  done;
  for n = 0 to 7 do
    for m = 0 to 7 do
      let s = ref 0.0 in
      for l = 0 to 7 do
        (* X = C^T Y C: the second factor indexes C[l][m] *)
        s := !s +. (tmp.((n * 8) + l) *. dct_matrix.(l).(m))
      done;
      let v = int_of_float (Float.round !s) in
      out.((n * 8) + m) <- max 0 (min 255 v)
    done
  done

(* JPEG's luminance quantization table, scaled by quality. *)
let base_quant =
  [| 16; 11; 10; 16; 24; 40; 51; 61; 12; 12; 14; 19; 26; 58; 60; 55; 14; 13;
     16; 24; 40; 57; 69; 56; 14; 17; 22; 29; 51; 87; 80; 62; 18; 22; 37; 56;
     68; 109; 103; 77; 24; 35; 55; 64; 81; 104; 113; 92; 49; 64; 78; 87;
     103; 121; 120; 101; 72; 92; 95; 98; 112; 100; 103; 99 |]

let quant_table ~quality =
  let scale = if quality < 50 then 5000 / max 1 quality else 200 - (2 * quality) in
  Array.map (fun q -> max 1 (((q * scale) + 50) / 100)) base_quant

let zigzag =
  [| 0; 1; 8; 16; 9; 2; 3; 10; 17; 24; 32; 25; 18; 11; 4; 5; 12; 19; 26; 33;
     40; 48; 41; 34; 27; 20; 13; 6; 7; 14; 21; 28; 35; 42; 49; 56; 57; 50;
     43; 36; 29; 22; 15; 23; 30; 37; 44; 51; 58; 59; 52; 45; 38; 31; 39; 46;
     53; 60; 61; 54; 47; 55; 62; 63 |]

(* RLE of the zigzag sequence: (run-of-zeros, value) pairs; values are
   signed 16-bit. 0xF0 run means "16 zeros, no value"; EOB = (0, 0). *)
let encode_block buf quant coeffs =
  let zz = Array.map (fun i -> coeffs.(i)) zigzag in
  (* quantize in zigzag order with the table addressed in raster order *)
  let q = Array.mapi (fun i v ->
      int_of_float (Float.round (v /. float_of_int quant.(zigzag.(i))))) zz
  in
  let last_nonzero = ref (-1) in
  Array.iteri (fun i v -> if v <> 0 then last_nonzero := i) q;
  let i = ref 0 in
  while !i <= !last_nonzero do
    let run = ref 0 in
    while q.(!i) = 0 && !run < 15 do
      incr run;
      incr i
    done;
    let v = q.(!i) in
    Buffer.add_char buf (Char.chr !run);
    Buffer.add_char buf (Char.chr (v land 0xff));
    Buffer.add_char buf (Char.chr ((v asr 8) land 0xff));
    incr i
  done;
  (* end of block *)
  Buffer.add_char buf '\255'

let decode_block data pos quant coeffs =
  Array.fill coeffs 0 64 0.0;
  let i = ref 0 in
  let p = ref pos in
  let stop = ref false in
  while not !stop do
    if !p >= Bytes.length data then failwith "mv1: truncated block";
    let run = Bytes.get_uint8 data !p in
    if run = 0xff then begin
      stop := true;
      incr p
    end
    else begin
      let lo = Bytes.get_uint8 data (!p + 1) in
      let hi = Bytes.get_uint8 data (!p + 2) in
      let v =
        let raw = lo lor (hi lsl 8) in
        if raw >= 32768 then raw - 65536 else raw
      in
      p := !p + 3;
      i := !i + run;
      if !i > 63 then failwith "mv1: run overflow";
      coeffs.(zigzag.(!i)) <- float_of_int (v * quant.(zigzag.(!i)));
      incr i
    end
  done;
  !p

(* ---- plane <-> blocks ---- *)

let for_blocks ~width ~height f =
  for by = 0 to (height / 8) - 1 do
    for bx = 0 to (width / 8) - 1 do
      f ~bx ~by
    done
  done

let extract_block plane ~width ~bx ~by out =
  for y = 0 to 7 do
    for x = 0 to 7 do
      out.((y * 8) + x) <- plane.(((by * 8 + y) * width) + (bx * 8) + x)
    done
  done

let insert_block plane ~width ~bx ~by block =
  for y = 0 to 7 do
    for x = 0 to 7 do
      plane.(((by * 8 + y) * width) + (bx * 8) + x) <- block.((y * 8) + x)
    done
  done

let encode_plane buf quant plane ~width ~height =
  let block = Array.make 64 0 in
  let coeffs = Array.make 64 0.0 in
  for_blocks ~width ~height (fun ~bx ~by ->
      extract_block plane ~width ~bx ~by block;
      fdct block coeffs;
      encode_block buf quant coeffs)

let decode_plane data pos quant plane ~width ~height =
  let coeffs = Array.make 64 0.0 in
  let block = Array.make 64 0 in
  let p = ref pos in
  for_blocks ~width ~height (fun ~bx ~by ->
      p := decode_block data !p quant coeffs;
      idct coeffs block;
      insert_block plane ~width ~bx ~by block);
  !p

(* ---- frames and container ---- *)

let blocks_per_frame ~width ~height =
  (width * height / 64) + (2 * (width / 2 * (height / 2) / 64))

let encode_frame ~width ~height ~quality frame =
  let quant = quant_table ~quality in
  let buf = Buffer.create (width * height / 4) in
  encode_plane buf quant frame.y_plane ~width ~height;
  encode_plane buf quant frame.u_plane ~width:(width / 2) ~height:(height / 2);
  encode_plane buf quant frame.v_plane ~width:(width / 2) ~height:(height / 2);
  Buffer.to_bytes buf

let decode_frame ~width ~height ~quality data =
  let quant = quant_table ~quality in
  let frame =
    {
      y_plane = Array.make (width * height) 0;
      u_plane = Array.make (width / 2 * (height / 2)) 0;
      v_plane = Array.make (width / 2 * (height / 2)) 0;
    }
  in
  let p = decode_plane data 0 quant frame.y_plane ~width ~height in
  let p = decode_plane data p quant frame.u_plane ~width:(width / 2) ~height:(height / 2) in
  let _ = decode_plane data p quant frame.v_plane ~width:(width / 2) ~height:(height / 2) in
  frame

let quality = 50 (* fixed container quality *)

let put32 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 3) ((v lsr 24) land 0xff)

let get32 b off =
  Bytes.get_uint8 b off
  lor (Bytes.get_uint8 b (off + 1) lsl 8)
  lor (Bytes.get_uint8 b (off + 2) lsl 16)
  lor (Bytes.get_uint8 b (off + 3) lsl 24)

let pack t =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf magic;
  let header = Bytes.make 16 '\000' in
  put32 header 0 t.width;
  put32 header 4 t.height;
  put32 header 8 t.fps;
  put32 header 12 (Array.length t.frames);
  Buffer.add_bytes buf header;
  Array.iter
    (fun payload ->
      let len = Bytes.make 4 '\000' in
      put32 len 0 (Bytes.length payload);
      Buffer.add_bytes buf len;
      Buffer.add_bytes buf payload)
    t.frames;
  Buffer.to_bytes buf

let unpack data =
  if Bytes.length data < 20 || not (String.equal (Bytes.sub_string data 0 4) magic)
  then Error "mv1: bad magic"
  else begin
    let width = get32 data 4 and height = get32 data 8 in
    let fps = get32 data 12 and nframes = get32 data 16 in
    if width <= 0 || height <= 0 || width mod 16 <> 0 || height mod 16 <> 0 then
      Error "mv1: bad dimensions"
    else begin
      let pos = ref 20 in
      let rec collect acc k =
        if k = 0 then Ok (List.rev acc)
        else if !pos + 4 > Bytes.length data then Error "mv1: truncated"
        else begin
          let len = get32 data !pos in
          pos := !pos + 4;
          if !pos + len > Bytes.length data then Error "mv1: truncated frame"
          else begin
            let payload = Bytes.sub data !pos len in
            pos := !pos + len;
            collect (payload :: acc) (k - 1)
          end
        end
      in
      match collect [] nframes with
      | Error e -> Error e
      | Ok frames ->
          Ok { width; height; fps; frames = Array.of_list frames }
    end
  end

(* Render a decoded frame to RGB; returns the YUV conversion cost. *)
let to_rgb ~simd frame ~width ~height out =
  Yuv.convert_420 ~width ~height ~y_plane:frame.y_plane ~u_plane:frame.u_plane
    ~v_plane:frame.v_plane ~out ~simd
