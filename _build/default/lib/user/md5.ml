(** MD5 (RFC 1321) — the md5sum workload of the Figure 9 compute
    benchmarks, where the paper attributes the VOS-vs-xv6 difference to
    newlib vs musl. Real implementation, vector-tested. *)

let cycles_per_block = 1_300 (* one 64-byte round on the A53 *)

let s =
  [| 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 5; 9; 14;
     20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 4; 11; 16; 23; 4; 11; 16;
     23; 4; 11; 16; 23; 4; 11; 16; 23; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10;
     15; 21; 6; 10; 15; 21 |]

(* K[i] = floor(2^32 * |sin(i+1)|), computed through Int64 to keep the
   full 32-bit value exact. *)
let kt =
  Array.init 64 (fun i ->
      Int64.to_int32
        (Int64.of_float (4294967296.0 *. Float.abs (sin (float_of_int (i + 1))))))

let rotl x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let compress state block_off data =
  let m = Array.make 16 0l in
  for i = 0 to 15 do
    let off = block_off + (4 * i) in
    m.(i) <-
      Int32.logor
        (Int32.of_int (Bytes.get_uint8 data off))
        (Int32.logor
           (Int32.shift_left (Int32.of_int (Bytes.get_uint8 data (off + 1))) 8)
           (Int32.logor
              (Int32.shift_left (Int32.of_int (Bytes.get_uint8 data (off + 2))) 16)
              (Int32.shift_left (Int32.of_int (Bytes.get_uint8 data (off + 3))) 24)))
  done;
  let a = ref state.(0) and b = ref state.(1) and c = ref state.(2) and d = ref state.(3) in
  for i = 0 to 63 do
    let f, g =
      if i < 16 then
        (Int32.logor (Int32.logand !b !c) (Int32.logand (Int32.lognot !b) !d), i)
      else if i < 32 then
        (Int32.logor (Int32.logand !d !b) (Int32.logand (Int32.lognot !d) !c), ((5 * i) + 1) mod 16)
      else if i < 48 then (Int32.logxor !b (Int32.logxor !c !d), ((3 * i) + 5) mod 16)
      else (Int32.logxor !c (Int32.logor !b (Int32.lognot !d)), (7 * i) mod 16)
    in
    let tmp = !d in
    d := !c;
    c := !b;
    b :=
      Int32.add !b
        (rotl (Int32.add !a (Int32.add f (Int32.add kt.(i) m.(g)))) s.(i));
    a := tmp
  done;
  state.(0) <- Int32.add state.(0) !a;
  state.(1) <- Int32.add state.(1) !b;
  state.(2) <- Int32.add state.(2) !c;
  state.(3) <- Int32.add state.(3) !d

let digest_with_blocks input =
  let state = [| 0x67452301l; 0xefcdab89l; 0x98badcfel; 0x10325476l |] in
  let len = Bytes.length input in
  let total = ((len + 8) / 64 + 1) * 64 in
  let padded = Bytes.make total '\000' in
  Bytes.blit input 0 padded 0 len;
  Bytes.set_uint8 padded len 0x80;
  let bitlen = Int64.of_int (len * 8) in
  for i = 0 to 7 do
    Bytes.set_uint8 padded (total - 8 + i)
      (Int64.to_int (Int64.shift_right_logical bitlen (8 * i)) land 0xff)
  done;
  let nblocks = total / 64 in
  for b = 0 to nblocks - 1 do
    compress state (b * 64) padded
  done;
  let out = Bytes.create 16 in
  Array.iteri
    (fun i word ->
      for j = 0 to 3 do
        Bytes.set_uint8 out ((4 * i) + j)
          (Int32.to_int (Int32.shift_right_logical word (8 * j)) land 0xff)
      done)
    state;
  (out, nblocks)

let digest input = fst (digest_with_blocks input)

let hex digest =
  String.concat ""
    (List.init (Bytes.length digest) (fun i ->
         Printf.sprintf "%02x" (Bytes.get_uint8 digest i)))
