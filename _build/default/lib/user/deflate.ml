(** DEFLATE (RFC 1951) — the decompression engine behind the PNG-style
    image loading the slider app does (the paper's userspace ports LODE
    for this; we implement the format directly).

    The inflater handles all three block types: stored, fixed-Huffman and
    dynamic-Huffman, with full LZ77 back-reference resolution. Two real
    (if unambitious) compressors are provided — stored blocks and
    fixed-Huffman literals — enough to author valid streams for assets and
    round-trip tests.

    [cycles_per_byte] lets apps charge simulated CPU for decode work. *)

let cycles_per_byte = 14 (* inflate cost on the A53, no NEON path *)

exception Corrupt of string

(* ---- bit reader, LSB first ---- *)

type reader = { data : Bytes.t; mutable pos : int; mutable bit : int }

let make_reader data = { data; pos = 0; bit = 0 }

let read_bit r =
  if r.pos >= Bytes.length r.data then raise (Corrupt "deflate: eof");
  let b = (Bytes.get_uint8 r.data r.pos lsr r.bit) land 1 in
  if r.bit = 7 then begin
    r.bit <- 0;
    r.pos <- r.pos + 1
  end
  else r.bit <- r.bit + 1;
  b

let read_bits r n =
  let v = ref 0 in
  for i = 0 to n - 1 do
    v := !v lor (read_bit r lsl i)
  done;
  !v

let align_byte r = if r.bit <> 0 then begin r.bit <- 0; r.pos <- r.pos + 1 end

(* ---- canonical Huffman decoding ----
   Decode bit-by-bit against the canonical code built from code lengths:
   at each length, codes are assigned in symbol order. *)

type huffman = { counts : int array; symbols : int array }

let build_huffman lengths =
  let max_bits = 15 in
  let counts = Array.make (max_bits + 1) 0 in
  Array.iter
    (fun l ->
      if l < 0 || l > max_bits then raise (Corrupt "deflate: bad code length");
      counts.(l) <- counts.(l) + 1)
    lengths;
  counts.(0) <- 0;
  (* over-subscription check *)
  let left = ref 1 in
  for l = 1 to max_bits do
    left := (!left * 2) - counts.(l);
    if !left < 0 then raise (Corrupt "deflate: over-subscribed code")
  done;
  let offsets = Array.make (max_bits + 2) 0 in
  for l = 1 to max_bits do
    offsets.(l + 1) <- offsets.(l) + counts.(l)
  done;
  let symbols = Array.make (Array.length lengths) 0 in
  Array.iteri
    (fun sym l ->
      if l > 0 then begin
        symbols.(offsets.(l)) <- sym;
        offsets.(l) <- offsets.(l) + 1
      end)
    lengths;
  { counts; symbols }

let decode_symbol r h =
  let code = ref 0 and first = ref 0 and index = ref 0 in
  let result = ref (-1) in
  let len = ref 1 in
  while !result < 0 do
    if !len > 15 then raise (Corrupt "deflate: bad symbol");
    code := !code lor read_bit r;
    let count = h.counts.(!len) in
    if !code - !first < count then result := h.symbols.(!index + !code - !first)
    else begin
      index := !index + count;
      first := (!first + count) lsl 1;
      code := !code lsl 1;
      incr len
    end
  done;
  !result

(* ---- inflate ---- *)

let length_base =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51; 59;
     67; 83; 99; 115; 131; 163; 195; 227; 258 |]

let length_extra =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4; 4;
     5; 5; 5; 5; 0 |]

let dist_base =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385;
     513; 769; 1025; 1537; 2049; 3073; 4097; 6145; 8193; 12289; 16385; 24577 |]

let dist_extra =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10;
     10; 11; 11; 12; 12; 13; 13 |]

let fixed_lit_lengths =
  Array.init 288 (fun i ->
      if i < 144 then 8 else if i < 256 then 9 else if i < 280 then 7 else 8)

let fixed_dist_lengths = Array.make 30 5

let clen_order = [| 16; 17; 18; 0; 8; 7; 9; 6; 10; 5; 11; 4; 12; 3; 13; 2; 14; 1; 15 |]

let inflate_block r out lit_h dist_h =
  let stop = ref false in
  while not !stop do
    let sym = decode_symbol r lit_h in
    if sym < 256 then Buffer.add_char out (Char.chr sym)
    else if sym = 256 then stop := true
    else begin
      let li = sym - 257 in
      if li >= Array.length length_base then raise (Corrupt "deflate: bad length");
      let len = length_base.(li) + read_bits r length_extra.(li) in
      let dsym = decode_symbol r dist_h in
      if dsym >= Array.length dist_base then raise (Corrupt "deflate: bad dist");
      let dist = dist_base.(dsym) + read_bits r dist_extra.(dsym) in
      let have = Buffer.length out in
      if dist > have then raise (Corrupt "deflate: dist too far");
      for _ = 1 to len do
        Buffer.add_char out (Buffer.nth out (Buffer.length out - dist))
      done
    end
  done

let read_dynamic_tables r =
  let hlit = read_bits r 5 + 257 in
  let hdist = read_bits r 5 + 1 in
  let hclen = read_bits r 4 + 4 in
  let clen_lengths = Array.make 19 0 in
  for i = 0 to hclen - 1 do
    clen_lengths.(clen_order.(i)) <- read_bits r 3
  done;
  let clen_h = build_huffman clen_lengths in
  let lengths = Array.make (hlit + hdist) 0 in
  let i = ref 0 in
  while !i < hlit + hdist do
    let sym = decode_symbol r clen_h in
    if sym < 16 then begin
      lengths.(!i) <- sym;
      incr i
    end
    else if sym = 16 then begin
      if !i = 0 then raise (Corrupt "deflate: repeat at start");
      let prev = lengths.(!i - 1) in
      let n = 3 + read_bits r 2 in
      for _ = 1 to n do
        if !i >= hlit + hdist then raise (Corrupt "deflate: repeat overflow");
        lengths.(!i) <- prev;
        incr i
      done
    end
    else begin
      let n = if sym = 17 then 3 + read_bits r 3 else 11 + read_bits r 7 in
      i := !i + n;
      if !i > hlit + hdist then raise (Corrupt "deflate: zero-run overflow")
    end
  done;
  let lit_h = build_huffman (Array.sub lengths 0 hlit) in
  let dist_h = build_huffman (Array.sub lengths hlit hdist) in
  (lit_h, dist_h)

let inflate data =
  let r = make_reader data in
  let out = Buffer.create (Bytes.length data * 3) in
  let final = ref false in
  while not !final do
    final := read_bit r = 1;
    let btype = read_bits r 2 in
    match btype with
    | 0 ->
        align_byte r;
        if r.pos + 4 > Bytes.length r.data then raise (Corrupt "deflate: stored header");
        let len =
          Bytes.get_uint8 r.data r.pos lor (Bytes.get_uint8 r.data (r.pos + 1) lsl 8)
        in
        let nlen =
          Bytes.get_uint8 r.data (r.pos + 2)
          lor (Bytes.get_uint8 r.data (r.pos + 3) lsl 8)
        in
        if len land 0xffff <> lnot nlen land 0xffff then
          raise (Corrupt "deflate: stored len check");
        r.pos <- r.pos + 4;
        if r.pos + len > Bytes.length r.data then raise (Corrupt "deflate: stored eof");
        Buffer.add_subbytes out r.data r.pos len;
        r.pos <- r.pos + len
    | 1 ->
        inflate_block r out
          (build_huffman fixed_lit_lengths)
          (build_huffman fixed_dist_lengths)
    | 2 ->
        let lit_h, dist_h = read_dynamic_tables r in
        inflate_block r out lit_h dist_h
    | _ -> raise (Corrupt "deflate: bad block type")
  done;
  Buffer.to_bytes out

(* ---- compressors ---- *)

(* Stored blocks: valid DEFLATE, ratio 1. *)
let compress_stored data =
  let out = Buffer.create (Bytes.length data + 16) in
  let len = Bytes.length data in
  let pos = ref 0 in
  let emit_block last chunk_len =
    Buffer.add_char out (if last then '\001' else '\000');
    Buffer.add_char out (Char.chr (chunk_len land 0xff));
    Buffer.add_char out (Char.chr ((chunk_len lsr 8) land 0xff));
    Buffer.add_char out (Char.chr (lnot chunk_len land 0xff));
    Buffer.add_char out (Char.chr ((lnot chunk_len lsr 8) land 0xff));
    Buffer.add_subbytes out data !pos chunk_len;
    pos := !pos + chunk_len
  in
  if len = 0 then emit_block true 0
  else
    while !pos < len do
      let chunk = min 65535 (len - !pos) in
      emit_block (!pos + chunk >= len) chunk
    done;
  Buffer.to_bytes out

(* Fixed-Huffman literals (no matches): a real entropy coder; compresses
   ASCII-ish data slightly, valid everywhere. *)
type writer = { wbuf : Buffer.t; mutable wbyte : int; mutable wbit : int }

let make_writer () = { wbuf = Buffer.create 1024; wbyte = 0; wbit = 0 }

let write_bit w b =
  w.wbyte <- w.wbyte lor (b lsl w.wbit);
  if w.wbit = 7 then begin
    Buffer.add_char w.wbuf (Char.chr w.wbyte);
    w.wbyte <- 0;
    w.wbit <- 0
  end
  else w.wbit <- w.wbit + 1

let write_bits_lsb w v n =
  for i = 0 to n - 1 do
    write_bit w ((v lsr i) land 1)
  done

(* Huffman codes are written MSB-first. *)
let write_code w code n =
  for i = n - 1 downto 0 do
    write_bit w ((code lsr i) land 1)
  done

let fixed_code sym =
  if sym < 144 then (0x30 + sym, 8)
  else if sym < 256 then (0x190 + sym - 144, 9)
  else if sym < 280 then (sym - 256, 7)
  else (0xc0 + sym - 280, 8)

let compress_fixed data =
  let w = make_writer () in
  write_bit w 1 (* final *);
  write_bits_lsb w 1 2 (* fixed *);
  Bytes.iter
    (fun c ->
      let code, n = fixed_code (Char.code c) in
      write_code w code n)
    data;
  let code, n = fixed_code 256 in
  write_code w code n;
  if w.wbit <> 0 then Buffer.add_char w.wbuf (Char.chr w.wbyte);
  Buffer.to_bytes w.wbuf
