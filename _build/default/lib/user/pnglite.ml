(** PNG-lite — the reproduction's LODE stand-in: a PNG-shaped container
    (magic, width/height header, DEFLATE-compressed filtered scanlines,
    checksum) with real decompression work on the load path. It keeps
    PNG's Sub filter per scanline so the compressor has structure to
    exploit, and an Adler-32 integrity check as in zlib. *)

let magic = "PNGL"

type image = Bmp.image = { width : int; height : int; pixels : int array }

let adler32 data =
  let a = ref 1 and b = ref 0 in
  Bytes.iter
    (fun c ->
      a := (!a + Char.code c) mod 65521;
      b := (!b + !a) mod 65521)
    data;
  (!b lsl 16) lor !a

(* Sub filter: each byte minus the previous pixel's same channel. *)
let filter_scanlines ~width ~height raw =
  let bpp = 3 in
  let stride = width * bpp in
  let out = Bytes.create (Bytes.length raw) in
  for row = 0 to height - 1 do
    for i = 0 to stride - 1 do
      let cur = Bytes.get_uint8 raw ((row * stride) + i) in
      let left = if i >= bpp then Bytes.get_uint8 raw ((row * stride) + i - bpp) else 0 in
      Bytes.set_uint8 out ((row * stride) + i) ((cur - left) land 0xff)
    done
  done;
  out

let unfilter_scanlines ~width ~height filtered =
  let bpp = 3 in
  let stride = width * bpp in
  let out = Bytes.create (Bytes.length filtered) in
  for row = 0 to height - 1 do
    for i = 0 to stride - 1 do
      let v = Bytes.get_uint8 filtered ((row * stride) + i) in
      let left = if i >= bpp then Bytes.get_uint8 out ((row * stride) + i - bpp) else 0 in
      Bytes.set_uint8 out ((row * stride) + i) ((v + left) land 0xff)
    done
  done;
  out

let put32 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 3) ((v lsr 24) land 0xff)

let get32 b off =
  Bytes.get_uint8 b off
  lor (Bytes.get_uint8 b (off + 1) lsl 8)
  lor (Bytes.get_uint8 b (off + 2) lsl 16)
  lor (Bytes.get_uint8 b (off + 3) lsl 24)

let encode ?(compressor = Deflate.compress_fixed) img =
  let raw = Bytes.create (img.width * img.height * 3) in
  Array.iteri
    (fun i px ->
      Bytes.set_uint8 raw (3 * i) ((px lsr 16) land 0xff);
      Bytes.set_uint8 raw ((3 * i) + 1) ((px lsr 8) land 0xff);
      Bytes.set_uint8 raw ((3 * i) + 2) (px land 0xff))
    img.pixels;
  let filtered = filter_scanlines ~width:img.width ~height:img.height raw in
  let payload = compressor filtered in
  let out = Bytes.make (20 + Bytes.length payload) '\000' in
  Bytes.blit_string magic 0 out 0 4;
  put32 out 4 img.width;
  put32 out 8 img.height;
  put32 out 12 (adler32 raw);
  put32 out 16 (Bytes.length payload);
  Bytes.blit payload 0 out 20 (Bytes.length payload);
  out

let decode data =
  if Bytes.length data < 20 || not (String.equal (Bytes.sub_string data 0 4) magic)
  then Error "pnglite: bad magic"
  else begin
    let width = get32 data 4 and height = get32 data 8 in
    let checksum = get32 data 12 in
    let plen = get32 data 16 in
    if width <= 0 || height <= 0 || width > 8192 || height > 8192 then
      Error "pnglite: bad dimensions"
    else if Bytes.length data < 20 + plen then Error "pnglite: truncated"
    else begin
      match Deflate.inflate (Bytes.sub data 20 plen) with
      | exception Deflate.Corrupt msg -> Error msg
      | filtered ->
          if Bytes.length filtered <> width * height * 3 then
            Error "pnglite: wrong payload size"
          else begin
            let raw = unfilter_scanlines ~width ~height filtered in
            if adler32 raw <> checksum then Error "pnglite: checksum mismatch"
            else begin
              let pixels =
                Array.init (width * height) (fun i ->
                    (Bytes.get_uint8 raw (3 * i) lsl 16)
                    lor (Bytes.get_uint8 raw ((3 * i) + 1) lsl 8)
                    lor Bytes.get_uint8 raw ((3 * i) + 2))
              in
              Ok { width; height; pixels }
            end
          end
    end
  end

(* Decode cost: inflate + unfilter + pixel packing. *)
let decode_cycles ~payload_bytes ~pixels =
  (payload_bytes * Deflate.cycles_per_byte) + (pixels * 4)
