(** User-space rendering context.

    Two modes, matching the paper's two render paths:
    - [Direct]: pixels go straight to the mmap'd framebuffer (DRI-style,
      §4.3); presenting means the cacheflush syscall.
    - [Windowed]: pixels accumulate in a client buffer written to
      /dev/surface each frame; the WM composites (§4.5).

    Draw calls tally their CPU cost locally and [present] issues one Burn —
    the per-frame "app logic + drawing" time that dominates Figure 11's
    latency breakdown. *)

type mode =
  | Direct of Hw.Framebuffer.t
  | Windowed of int  (** fd of /dev/surface *)

type t = {
  mode : mode;
  width : int;
  height : int;
  pixels : int array;  (** client-side buffer (windowed) or staging *)
  mutable cost_cycles : int;
  mutable frames : int;
  scanline : Bytes.t;  (** scratch for surface writes *)
  row_buf : int array;  (** scratch row for framebuffer blits *)
}

let rgb r g b = ((r land 0xff) lsl 16) lor ((g land 0xff) lsl 8) lor (b land 0xff)

(* Cycle costs per operation on the A53 (calibrated so a full 640x480
   clear+draw+flush frame lands in the few-ms range the paper reports). *)
let cost_pixel = 2
let cost_fill_pixel = 1

(* Open a direct-rendering context: open /dev/fb and mmap it; on
   prototypes without device files, the file-less mmap path (par 4.3). *)
let direct env =
  let fd = Usys.open_ "/dev/fb" Core.Abi.o_rdwr in
  begin
    match Usys.mmap fd with
    | Error e -> Error e
    | Ok (_addr, w, h) ->
        if fd >= 0 then ignore (Usys.close fd);
        let fb = Uenv.fb env in
        Ok
          {
            mode = Direct fb;
            width = w;
            height = h;
            pixels = Array.make (w * h) 0;
            cost_cycles = 0;
            frames = 0;
            scanline = Bytes.create (w * 4);
            row_buf = Array.make w 0;
          }
  end

(* Open a windowed context: create a surface of the given geometry. *)
let windowed ~width ~height ~x ~y ?(alpha = 255) () =
  let fd = Usys.open_ "/dev/surface" Core.Abi.o_wronly in
  if fd < 0 then Error (-fd)
  else begin
    let header = Bytes.make 24 '\000' in
    Bytes.blit_string "SURF" 0 header 0 4;
    let put32 off v =
      Bytes.set_uint8 header off (v land 0xff);
      Bytes.set_uint8 header (off + 1) ((v lsr 8) land 0xff);
      Bytes.set_uint8 header (off + 2) ((v lsr 16) land 0xff);
      Bytes.set_uint8 header (off + 3) ((v lsr 24) land 0xff)
    in
    put32 4 width;
    put32 8 height;
    put32 12 x;
    put32 16 y;
    Bytes.set_uint8 header 20 alpha;
    let n = Usys.write fd header in
    if n < 0 then begin
      ignore (Usys.close fd);
      Error (-n)
    end
    else
      Ok
        {
          mode = Windowed fd;
          width;
          height;
          pixels = Array.make (width * height) 0;
          cost_cycles = 0;
          frames = 0;
          scanline = Bytes.create (width * height * 4);
          row_buf = Array.make width 0;
        }
  end

let charge t cycles = t.cost_cycles <- t.cost_cycles + cycles

let put t ~x ~y px =
  if x >= 0 && x < t.width && y >= 0 && y < t.height then begin
    t.pixels.((y * t.width) + x) <- px;
    t.cost_cycles <- t.cost_cycles + cost_pixel
  end

let get t ~x ~y =
  if x >= 0 && x < t.width && y >= 0 && y < t.height then
    t.pixels.((y * t.width) + x)
  else 0

let fill t px =
  Array.fill t.pixels 0 (Array.length t.pixels) px;
  t.cost_cycles <- t.cost_cycles + (Array.length t.pixels * cost_fill_pixel)

let fill_rect t ~x ~y ~w ~h px =
  for yy = max 0 y to min t.height (y + h) - 1 do
    let row = yy * t.width in
    for xx = max 0 x to min t.width (x + w) - 1 do
      t.pixels.(row + xx) <- px
    done
  done;
  t.cost_cycles <- t.cost_cycles + (w * h * cost_fill_pixel)

(* 5x7 bitmap font (digits, upper-case letters, a little punctuation). *)
let glyph c =
  match Char.uppercase_ascii c with
  | '0' -> [| 0b01110; 0b10001; 0b10011; 0b10101; 0b11001; 0b10001; 0b01110 |]
  | '1' -> [| 0b00100; 0b01100; 0b00100; 0b00100; 0b00100; 0b00100; 0b01110 |]
  | '2' -> [| 0b01110; 0b10001; 0b00001; 0b00010; 0b00100; 0b01000; 0b11111 |]
  | '3' -> [| 0b11110; 0b00001; 0b00001; 0b01110; 0b00001; 0b00001; 0b11110 |]
  | '4' -> [| 0b00010; 0b00110; 0b01010; 0b10010; 0b11111; 0b00010; 0b00010 |]
  | '5' -> [| 0b11111; 0b10000; 0b11110; 0b00001; 0b00001; 0b10001; 0b01110 |]
  | '6' -> [| 0b00110; 0b01000; 0b10000; 0b11110; 0b10001; 0b10001; 0b01110 |]
  | '7' -> [| 0b11111; 0b00001; 0b00010; 0b00100; 0b01000; 0b01000; 0b01000 |]
  | '8' -> [| 0b01110; 0b10001; 0b10001; 0b01110; 0b10001; 0b10001; 0b01110 |]
  | '9' -> [| 0b01110; 0b10001; 0b10001; 0b01111; 0b00001; 0b00010; 0b01100 |]
  | 'A' -> [| 0b01110; 0b10001; 0b10001; 0b11111; 0b10001; 0b10001; 0b10001 |]
  | 'B' -> [| 0b11110; 0b10001; 0b10001; 0b11110; 0b10001; 0b10001; 0b11110 |]
  | 'C' -> [| 0b01110; 0b10001; 0b10000; 0b10000; 0b10000; 0b10001; 0b01110 |]
  | 'D' -> [| 0b11110; 0b10001; 0b10001; 0b10001; 0b10001; 0b10001; 0b11110 |]
  | 'E' -> [| 0b11111; 0b10000; 0b10000; 0b11110; 0b10000; 0b10000; 0b11111 |]
  | 'F' -> [| 0b11111; 0b10000; 0b10000; 0b11110; 0b10000; 0b10000; 0b10000 |]
  | 'G' -> [| 0b01110; 0b10001; 0b10000; 0b10111; 0b10001; 0b10001; 0b01111 |]
  | 'H' -> [| 0b10001; 0b10001; 0b10001; 0b11111; 0b10001; 0b10001; 0b10001 |]
  | 'I' -> [| 0b01110; 0b00100; 0b00100; 0b00100; 0b00100; 0b00100; 0b01110 |]
  | 'J' -> [| 0b00111; 0b00010; 0b00010; 0b00010; 0b00010; 0b10010; 0b01100 |]
  | 'K' -> [| 0b10001; 0b10010; 0b10100; 0b11000; 0b10100; 0b10010; 0b10001 |]
  | 'L' -> [| 0b10000; 0b10000; 0b10000; 0b10000; 0b10000; 0b10000; 0b11111 |]
  | 'M' -> [| 0b10001; 0b11011; 0b10101; 0b10101; 0b10001; 0b10001; 0b10001 |]
  | 'N' -> [| 0b10001; 0b11001; 0b10101; 0b10011; 0b10001; 0b10001; 0b10001 |]
  | 'O' -> [| 0b01110; 0b10001; 0b10001; 0b10001; 0b10001; 0b10001; 0b01110 |]
  | 'P' -> [| 0b11110; 0b10001; 0b10001; 0b11110; 0b10000; 0b10000; 0b10000 |]
  | 'Q' -> [| 0b01110; 0b10001; 0b10001; 0b10001; 0b10101; 0b10010; 0b01101 |]
  | 'R' -> [| 0b11110; 0b10001; 0b10001; 0b11110; 0b10100; 0b10010; 0b10001 |]
  | 'S' -> [| 0b01111; 0b10000; 0b10000; 0b01110; 0b00001; 0b00001; 0b11110 |]
  | 'T' -> [| 0b11111; 0b00100; 0b00100; 0b00100; 0b00100; 0b00100; 0b00100 |]
  | 'U' -> [| 0b10001; 0b10001; 0b10001; 0b10001; 0b10001; 0b10001; 0b01110 |]
  | 'V' -> [| 0b10001; 0b10001; 0b10001; 0b10001; 0b10001; 0b01010; 0b00100 |]
  | 'W' -> [| 0b10001; 0b10001; 0b10001; 0b10101; 0b10101; 0b10101; 0b01010 |]
  | 'X' -> [| 0b10001; 0b10001; 0b01010; 0b00100; 0b01010; 0b10001; 0b10001 |]
  | 'Y' -> [| 0b10001; 0b10001; 0b01010; 0b00100; 0b00100; 0b00100; 0b00100 |]
  | 'Z' -> [| 0b11111; 0b00001; 0b00010; 0b00100; 0b01000; 0b10000; 0b11111 |]
  | ':' -> [| 0b00000; 0b00100; 0b00000; 0b00000; 0b00100; 0b00000; 0b00000 |]
  | '.' -> [| 0b00000; 0b00000; 0b00000; 0b00000; 0b00000; 0b00100; 0b00100 |]
  | '%' -> [| 0b11001; 0b11010; 0b00010; 0b00100; 0b01000; 0b01011; 0b10011 |]
  | '/' -> [| 0b00001; 0b00010; 0b00010; 0b00100; 0b01000; 0b01000; 0b10000 |]
  | '-' -> [| 0b00000; 0b00000; 0b00000; 0b11111; 0b00000; 0b00000; 0b00000 |]
  | _ -> [| 0; 0; 0; 0; 0; 0; 0 |]

let text t ~x ~y ~color s =
  String.iteri
    (fun i c ->
      let g = glyph c in
      for row = 0 to 6 do
        for col = 0 to 4 do
          if g.(row) land (1 lsl (4 - col)) <> 0 then
            put t ~x:(x + (i * 6) + col) ~y:(y + row) color
        done
      done)
    s

(* Present the frame: push pixels out and pay the accumulated CPU bill. *)
let present t =
  t.frames <- t.frames + 1;
  (match t.mode with
  | Direct fb ->
      (* copy client buffer to the mapped framebuffer: user memmove *)
      for y = 0 to t.height - 1 do
        Array.blit t.pixels (y * t.width) t.row_buf 0 t.width;
        Hw.Framebuffer.write_row fb ~y t.row_buf
      done;
      (match Hw.Framebuffer.mapping fb with
      | Hw.Framebuffer.Cached ->
          charge t (t.width * t.height / 8) (* NEON memmove ~8 B/cycle *)
      | Hw.Framebuffer.Uncached ->
          (* Device-nGnRnE stores: no gathering, each 32-bit store waits
             on the bus (~20 cycles) -- the "significant FPS drop" of
             par 4.3 *)
          charge t (t.width * t.height * 20));
      Usys.burn t.cost_cycles;
      t.cost_cycles <- 0;
      (* make it visible: the §4.3 cache lesson *)
      ignore (Usys.cacheflush ())
  | Windowed fd ->
      let npx = t.width * t.height in
      (if Bytes.length t.scanline < npx * 4 then ()
       else
         for i = 0 to npx - 1 do
           let px = t.pixels.(i) in
           Bytes.set_uint8 t.scanline (4 * i) (px land 0xff);
           Bytes.set_uint8 t.scanline ((4 * i) + 1) ((px lsr 8) land 0xff);
           Bytes.set_uint8 t.scanline ((4 * i) + 2) ((px lsr 16) land 0xff);
           Bytes.set_uint8 t.scanline ((4 * i) + 3) 0xff
         done);
      charge t (npx / 4) (* pack pixels for the surface write *);
      Usys.burn t.cost_cycles;
      t.cost_cycles <- 0;
      ignore (Usys.write fd (Bytes.sub t.scanline 0 (npx * 4))))

let close t =
  match t.mode with Windowed fd -> ignore (Usys.close fd) | Direct _ -> ()

let frames t = t.frames
