(** The process environment handed to apps at registration time.

    Real VOS programs discover the framebuffer through mmap's returned
    address; our apps get the backing object through this record, filled in
    by the stager once the board exists. The SIMD flag mirrors §5.2's
    NEON pixel paths — apps consult it to pick the fast conversion
    kernels. *)

type t = {
  mutable e_fb : Hw.Framebuffer.t option;  (** set after boot *)
  mutable e_simd : bool;  (** NEON-style pixel ops available *)
  mutable e_libc_factor : float;
      (** relative cost of the C library's compute paths (newlib = 1.0);
          the baseline OS models vary this (§6.2) *)
}

let create () = { e_fb = None; e_simd = true; e_libc_factor = 1.0 }

let fb t =
  match t.e_fb with
  | Some fb -> fb
  | None -> invalid_arg "uenv: framebuffer not present (did mmap succeed?)"

(* Scale a cycle count by the libc factor — used by the user library's
   compute helpers (string ops, qsort, md5) whose speed depends on the C
   library per Figure 9. *)
let libc_cycles t cycles =
  int_of_float (float_of_int cycles *. t.e_libc_factor)
