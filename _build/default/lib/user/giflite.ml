(** GIF-lite — GIF's actual machinery (256-color palette + LZW with
    variable-width codes) in a simplified container, for the slider's
    animated-slide support. Multi-frame files hold a shared palette and
    per-frame LZW-compressed index streams. *)

let magic = "GIFL"

type t = {
  width : int;
  height : int;
  palette : int array;  (** up to 256 RGB entries *)
  frames : int array array;  (** palette indices, width*height each *)
  delay_ms : int;
}

(* Build a palette by uniform quantization (3-3-2 bits), real enough for
   slides and test patterns. *)
let quantize_332 pixels =
  let palette =
    Array.init 256 (fun i ->
        let r = (i lsr 5) land 0x7 and g = (i lsr 2) land 0x7 and b = i land 0x3 in
        (r * 255 / 7 lsl 16) lor (g * 255 / 7 lsl 8) lor (b * 255 / 3))
  in
  let index px =
    let r = (px lsr 16) land 0xff and g = (px lsr 8) land 0xff and b = px land 0xff in
    ((r lsr 5) lsl 5) lor ((g lsr 5) lsl 2) lor (b lsr 6)
  in
  (palette, Array.map index pixels)

let put32 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 3) ((v lsr 24) land 0xff)

let get32 b off =
  Bytes.get_uint8 b off
  lor (Bytes.get_uint8 b (off + 1) lsl 8)
  lor (Bytes.get_uint8 b (off + 2) lsl 16)
  lor (Bytes.get_uint8 b (off + 3) lsl 24)

let encode t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  let header = Bytes.make 16 '\000' in
  put32 header 0 t.width;
  put32 header 4 t.height;
  put32 header 8 (Array.length t.frames);
  put32 header 12 t.delay_ms;
  Buffer.add_bytes buf header;
  Array.iter
    (fun color ->
      Buffer.add_char buf (Char.chr ((color lsr 16) land 0xff));
      Buffer.add_char buf (Char.chr ((color lsr 8) land 0xff));
      Buffer.add_char buf (Char.chr (color land 0xff)))
    t.palette;
  Array.iter
    (fun frame ->
      let indices = Bytes.init (Array.length frame) (fun i -> Char.chr frame.(i)) in
      let compressed = Lzw.encode ~min_code_size:8 indices in
      let len = Bytes.make 4 '\000' in
      put32 len 0 (Bytes.length compressed);
      Buffer.add_bytes buf len;
      Buffer.add_bytes buf compressed)
    t.frames;
  Buffer.to_bytes buf

let decode data =
  if
    Bytes.length data < 20 + 768
    || not (String.equal (Bytes.sub_string data 0 4) magic)
  then Error "giflite: bad magic"
  else begin
    let width = get32 data 4 and height = get32 data 8 in
    let nframes = get32 data 12 and delay_ms = get32 data 16 in
    if width <= 0 || height <= 0 || nframes <= 0 || nframes > 4096 then
      Error "giflite: bad header"
    else begin
      let palette =
        Array.init 256 (fun i ->
            let off = 20 + (3 * i) in
            (Bytes.get_uint8 data off lsl 16)
            lor (Bytes.get_uint8 data (off + 1) lsl 8)
            lor Bytes.get_uint8 data (off + 2))
      in
      let pos = ref (20 + 768) in
      let read_frame () =
        if !pos + 4 > Bytes.length data then Error "giflite: truncated"
        else begin
          let len = get32 data !pos in
          pos := !pos + 4;
          if !pos + len > Bytes.length data then Error "giflite: truncated frame"
          else begin
            let compressed = Bytes.sub data !pos len in
            pos := !pos + len;
            match Lzw.decode ~min_code_size:8 compressed with
            | exception Lzw.Corrupt msg -> Error msg
            | indices ->
                if Bytes.length indices <> width * height then
                  Error "giflite: wrong frame size"
                else
                  Ok (Array.init (width * height) (fun i -> Bytes.get_uint8 indices i))
          end
        end
      in
      let rec collect acc k =
        if k = 0 then Ok (List.rev acc)
        else
          match read_frame () with
          | Ok f -> collect (f :: acc) (k - 1)
          | Error e -> Error e
      in
      match collect [] nframes with
      | Error e -> Error e
      | Ok frames ->
          Ok { width; height; palette; frames = Array.of_list frames; delay_ms }
    end
  end

(* Render a frame's indices to RGB. *)
let render t frame_idx out =
  let frame = t.frames.(frame_idx mod Array.length t.frames) in
  Array.iteri (fun i idx -> out.(i) <- t.palette.(idx land 0xff)) frame
