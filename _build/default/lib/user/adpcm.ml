(** IMA ADPCM — the audio codec behind "VOGG" files, the reproduction's
    stand-in for OGG/Vorbis (see DESIGN.md's substitution table). 4 bits
    per sample, real step-size adaptation; what matters for the paper's
    pipeline is that decode does genuine per-sample work feeding the
    /dev/sb producer-consumer chain. *)

let cycles_per_sample = 28 (* decode cost, scalar A53 *)

let step_table =
  [| 7; 8; 9; 10; 11; 12; 13; 14; 16; 17; 19; 21; 23; 25; 28; 31; 34; 37;
     41; 45; 50; 55; 60; 66; 73; 80; 88; 97; 107; 118; 130; 143; 157; 173;
     190; 209; 230; 253; 279; 307; 337; 371; 408; 449; 494; 544; 598; 658;
     724; 796; 876; 963; 1060; 1166; 1282; 1411; 1552; 1707; 1878; 2066;
     2272; 2499; 2749; 3024; 3327; 3660; 4026; 4428; 4871; 5358; 5894;
     6484; 7132; 7845; 8630; 9493; 10442; 11487; 12635; 13899; 15289;
     16818; 18500; 20350; 22385; 24623; 27086; 29794; 32767 |]

let index_table = [| -1; -1; -1; -1; 2; 4; 6; 8; -1; -1; -1; -1; 2; 4; 6; 8 |]

let clamp lo hi v = max lo (min hi v)

type state = { mutable predictor : int; mutable step_index : int }

let fresh_state () = { predictor = 0; step_index = 0 }

let encode_sample st sample =
  let step = step_table.(st.step_index) in
  let diff = sample - st.predictor in
  let nibble = ref (if diff < 0 then 8 else 0) in
  let diff = abs diff in
  let d = ref diff and delta = ref (step lsr 3) in
  if !d >= step then begin
    nibble := !nibble lor 4;
    d := !d - step;
    delta := !delta + step
  end;
  if !d >= step lsr 1 then begin
    nibble := !nibble lor 2;
    d := !d - (step lsr 1);
    delta := !delta + (step lsr 1)
  end;
  if !d >= step lsr 2 then begin
    nibble := !nibble lor 1;
    delta := !delta + (step lsr 2)
  end;
  st.predictor <-
    clamp (-32768) 32767
      (if !nibble land 8 <> 0 then st.predictor - !delta
       else st.predictor + !delta);
  st.step_index <- clamp 0 88 (st.step_index + index_table.(!nibble));
  !nibble

let decode_nibble st nibble =
  let step = step_table.(st.step_index) in
  let delta = ref (step lsr 3) in
  if nibble land 4 <> 0 then delta := !delta + step;
  if nibble land 2 <> 0 then delta := !delta + (step lsr 1);
  if nibble land 1 <> 0 then delta := !delta + (step lsr 2);
  st.predictor <-
    clamp (-32768) 32767
      (if nibble land 8 <> 0 then st.predictor - !delta
       else st.predictor + !delta);
  st.step_index <- clamp 0 88 (st.step_index + index_table.(nibble));
  st.predictor

(* Encode 16-bit samples to packed nibbles (low nibble first). *)
let encode samples =
  let st = fresh_state () in
  let n = Array.length samples in
  let out = Bytes.make ((n + 1) / 2) '\000' in
  Array.iteri
    (fun i s ->
      let nib = encode_sample st s in
      let byte = Bytes.get_uint8 out (i / 2) in
      Bytes.set_uint8 out (i / 2)
        (if i land 1 = 0 then byte lor nib else byte lor (nib lsl 4)))
    samples;
  out

let decode data ~samples =
  let st = fresh_state () in
  Array.init samples (fun i ->
      let byte = Bytes.get_uint8 data (i / 2) in
      let nib = if i land 1 = 0 then byte land 0xf else byte lsr 4 in
      decode_nibble st nib)

(* ---- the VOGG container: header + nibble payload ---- *)

let magic = "VOGG"

let pack ~rate samples =
  let payload = encode samples in
  let n = Array.length samples in
  let out = Bytes.make (16 + Bytes.length payload) '\000' in
  Bytes.blit_string magic 0 out 0 4;
  let put32 off v =
    Bytes.set_uint8 out off (v land 0xff);
    Bytes.set_uint8 out (off + 1) ((v lsr 8) land 0xff);
    Bytes.set_uint8 out (off + 2) ((v lsr 16) land 0xff);
    Bytes.set_uint8 out (off + 3) ((v lsr 24) land 0xff)
  in
  put32 4 rate;
  put32 8 n;
  Bytes.blit payload 0 out 16 (Bytes.length payload);
  out

let unpack data =
  if Bytes.length data < 16 || not (String.equal (Bytes.sub_string data 0 4) magic)
  then Error "vogg: bad magic"
  else begin
    let get32 off =
      Bytes.get_uint8 data off
      lor (Bytes.get_uint8 data (off + 1) lsl 8)
      lor (Bytes.get_uint8 data (off + 2) lsl 16)
      lor (Bytes.get_uint8 data (off + 3) lsl 24)
    in
    let rate = get32 4 and n = get32 8 in
    if Bytes.length data < 16 + ((n + 1) / 2) then Error "vogg: truncated"
    else Ok (rate, n, Bytes.sub data 16 (Bytes.length data - 16))
  end
