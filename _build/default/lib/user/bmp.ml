(** BMP (Windows BITMAPINFOHEADER, 24bpp) — a real codec for the slider's
    slide decks: users drop BMPs onto the FAT partition from any OS. *)

let cycles_per_pixel = 3 (* row-padded copy + channel shuffle *)

type image = { width : int; height : int; pixels : int array }

let row_stride width = (width * 3 + 3) / 4 * 4

let encode img =
  let stride = row_stride img.width in
  let data_bytes = stride * img.height in
  let file_bytes = 54 + data_bytes in
  let out = Bytes.make file_bytes '\000' in
  let put16 off v =
    Bytes.set_uint8 out off (v land 0xff);
    Bytes.set_uint8 out (off + 1) ((v lsr 8) land 0xff)
  in
  let put32 off v =
    put16 off (v land 0xffff);
    put16 (off + 2) ((v lsr 16) land 0xffff)
  in
  Bytes.set out 0 'B';
  Bytes.set out 1 'M';
  put32 2 file_bytes;
  put32 10 54 (* pixel data offset *);
  put32 14 40 (* BITMAPINFOHEADER *);
  put32 18 img.width;
  put32 22 img.height;
  put16 26 1 (* planes *);
  put16 28 24 (* bpp *);
  put32 34 data_bytes;
  (* rows bottom-up, BGR *)
  for row = 0 to img.height - 1 do
    let src_row = img.height - 1 - row in
    for col = 0 to img.width - 1 do
      let px = img.pixels.((src_row * img.width) + col) in
      let off = 54 + (row * stride) + (col * 3) in
      Bytes.set_uint8 out off (px land 0xff);
      Bytes.set_uint8 out (off + 1) ((px lsr 8) land 0xff);
      Bytes.set_uint8 out (off + 2) ((px lsr 16) land 0xff)
    done
  done;
  out

let decode data =
  if Bytes.length data < 54 then Error "bmp: truncated header"
  else if Bytes.get data 0 <> 'B' || Bytes.get data 1 <> 'M' then
    Error "bmp: bad magic"
  else begin
    let get16 off = Bytes.get_uint8 data off lor (Bytes.get_uint8 data (off + 1) lsl 8) in
    let get32 off = get16 off lor (get16 (off + 2) lsl 16) in
    let offset = get32 10 in
    let width = get32 18 and height = get32 22 in
    let bpp = get16 28 in
    if bpp <> 24 then Error "bmp: only 24bpp supported"
    else if width <= 0 || height <= 0 || width > 8192 || height > 8192 then
      Error "bmp: bad dimensions"
    else begin
      let stride = row_stride width in
      if Bytes.length data < offset + (stride * height) then
        Error "bmp: truncated pixels"
      else begin
        let pixels = Array.make (width * height) 0 in
        for row = 0 to height - 1 do
          let src_row = height - 1 - row in
          for col = 0 to width - 1 do
            let off = offset + (src_row * stride) + (col * 3) in
            pixels.((row * width) + col) <-
              Bytes.get_uint8 data off
              lor (Bytes.get_uint8 data (off + 1) lsl 8)
              lor (Bytes.get_uint8 data (off + 2) lsl 16)
          done
        done;
        Ok { width; height; pixels }
      end
    end
  end
