(** YUV↔RGB conversion — §5.2's headline optimization: the scalar byte
    loop versus the NEON SIMD path improves video playback ~3x. Both
    paths produce identical pixels; they differ in the cycle cost the
    caller must charge, which is the honest way to reproduce the paper's
    experiment (the arithmetic is the same; the ILP is not). *)

let cycles_per_pixel_scalar = 12
let cycles_per_pixel_simd = 2 (* 8-wide NEON with saturating narrows *)

let cycles_per_pixel ~simd =
  if simd then cycles_per_pixel_simd else cycles_per_pixel_scalar

let clamp v = if v < 0 then 0 else if v > 255 then 255 else v

(* ITU-R BT.601 integer approximation, the one everyone ships. *)
let yuv_to_rgb ~y ~u ~v =
  let c = y - 16 and d = u - 128 and e = v - 128 in
  let r = clamp (((298 * c) + (409 * e) + 128) asr 8) in
  let g = clamp (((298 * c) - (100 * d) - (208 * e) + 128) asr 8) in
  let b = clamp (((298 * c) + (516 * d) + 128) asr 8) in
  (r lsl 16) lor (g lsl 8) lor b

let rgb_to_yuv px =
  let r = (px lsr 16) land 0xff
  and g = (px lsr 8) land 0xff
  and b = px land 0xff in
  let y = (((66 * r) + (129 * g) + (25 * b) + 128) asr 8) + 16 in
  let u = (((-38 * r) - (74 * g) + (112 * b) + 128) asr 8) + 128 in
  let v = (((112 * r) - (94 * g) - (18 * b) + 128) asr 8) + 128 in
  (clamp y, clamp u, clamp v)

(* Convert a YUV420 planar frame to packed RGB. [u]/[v] are quarter-size
   planes. Returns the cycle cost for the chosen path. *)
let convert_420 ~width ~height ~y_plane ~u_plane ~v_plane ~out ~simd =
  assert (Array.length out >= width * height);
  for row = 0 to height - 1 do
    let crow = row / 2 in
    for col = 0 to width - 1 do
      let ccol = col / 2 in
      out.((row * width) + col) <-
        yuv_to_rgb
          ~y:y_plane.((row * width) + col)
          ~u:u_plane.((crow * (width / 2)) + ccol)
          ~v:v_plane.((crow * (width / 2)) + ccol)
    done
  done;
  width * height * cycles_per_pixel ~simd
