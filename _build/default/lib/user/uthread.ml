(** User-level threading and synchronization (§4.5).

    clone(CLONE_VM) gives raw threads; this module builds what the paper's
    userspace builds on top: mutexes and condition variables implemented
    over the semaphore syscalls, plus a user spinlock. Parallel programs
    (the blockchain miner, SDL's audio thread) use these directly — VOS
    has no pthreads (§5.4). *)

let spawn body = Usys.clone body
let join tid = Usys.join tid

(** Mutex: a binary semaphore. *)
module Mutex = struct
  type t = { sem : int; mutable owner : int }

  let create () = { sem = Usys.sem_open 1; owner = -1 }

  let lock t =
    ignore (Usys.sem_wait t.sem);
    t.owner <- Usys.getpid ()

  let unlock t =
    assert (t.owner = Usys.getpid ());
    t.owner <- -1;
    ignore (Usys.sem_post t.sem)

  let with_lock t f =
    lock t;
    let finally () = unlock t in
    match f () with
    | v ->
        finally ();
        v
    | exception e ->
        finally ();
        raise e

  let destroy t = ignore (Usys.sem_close t.sem)
end

(** Condition variable over semaphores (the classic "waiter counter +
    queue semaphore" construction). *)
module Cond = struct
  type t = { queue : int; mutable waiters : int }

  let create () = { queue = Usys.sem_open 0; waiters = 0 }

  (* must hold [m] *)
  let wait t m =
    t.waiters <- t.waiters + 1;
    Mutex.unlock m;
    ignore (Usys.sem_wait t.queue);
    Mutex.lock m

  let signal t =
    if t.waiters > 0 then begin
      t.waiters <- t.waiters - 1;
      ignore (Usys.sem_post t.queue)
    end

  let broadcast t =
    while t.waiters > 0 do
      t.waiters <- t.waiters - 1;
      ignore (Usys.sem_post t.queue)
    done

  let destroy t = ignore (Usys.sem_close t.queue)
end

(** User spinlock: test-and-set with a yield-free busy loop. In the
    simulation tasks never observe a mid-critical-section lock (scheduling
    points are explicit), so the spin path exists for cost realism: each
    acquisition burns the LDXR/STXR dance. *)
module Spinlock = struct
  type t = { mutable held : bool; mutable spins : int }

  let create () = { held = false; spins = 0 }

  let lock t =
    Usys.burn 40;
    while t.held do
      (* a real contender would spin; burn a slice and retry *)
      t.spins <- t.spins + 1;
      Usys.burn 200
    done;
    t.held <- true

  let unlock t =
    assert t.held;
    Usys.burn 20;
    t.held <- false

  let spins t = t.spins
end
