lib/user/uthread.ml: Usys
