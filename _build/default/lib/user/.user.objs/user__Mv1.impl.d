lib/user/mv1.ml: Array Buffer Bytes Char Float List String Yuv
