lib/user/deflate.ml: Array Buffer Bytes Char
