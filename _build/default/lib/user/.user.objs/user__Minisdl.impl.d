lib/user/minisdl.ml: Abi Array Bytes Core Gfx Uenv Uevents Usys
