lib/user/bmp.ml: Array Bytes
