lib/user/giflite.ml: Array Buffer Bytes Char List Lzw String
