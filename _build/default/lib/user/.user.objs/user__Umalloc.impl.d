lib/user/umalloc.ml: List Usys
