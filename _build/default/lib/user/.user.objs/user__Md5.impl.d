lib/user/md5.ml: Array Bytes Float Int32 Int64 List Printf String
