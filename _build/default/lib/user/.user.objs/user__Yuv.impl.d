lib/user/yuv.ml: Array
