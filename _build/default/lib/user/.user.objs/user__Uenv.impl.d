lib/user/uenv.ml: Hw
