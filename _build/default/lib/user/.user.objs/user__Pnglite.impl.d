lib/user/pnglite.ml: Array Bmp Bytes Char Deflate String
