lib/user/usys.ml: Abi Buffer Bytes Core Effect Errno Printf
