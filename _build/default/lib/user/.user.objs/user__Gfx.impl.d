lib/user/gfx.ml: Array Bytes Char Core Hw String Uenv Usys
