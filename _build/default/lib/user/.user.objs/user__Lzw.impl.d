lib/user/lzw.ml: Array Buffer Bytes Char Hashtbl List Option
