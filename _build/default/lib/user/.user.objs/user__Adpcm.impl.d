lib/user/adpcm.ml: Array Bytes String
