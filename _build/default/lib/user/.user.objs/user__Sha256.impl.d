lib/user/sha256.ml: Array Bytes Int32 List Printf String
