lib/user/uevents.ml: Bytes Char Core List Usys
