(** User-space malloc over sbrk — a real first-fit free-list allocator in
    the style of the K&R malloc that newlib and xv6's umalloc use.

    The heap is the process's sbrk arena; headers and payloads are
    accounted in simulated bytes. Since user memory has no byte store in
    the simulation, the allocator manages {e extents}: it returns offsets
    into the arena, and its free-list behaviour (splitting, coalescing,
    sbrk growth) is fully real and testable. *)

type block = { addr : int; size : int }

type t = {
  mutable free_list : block list;  (** sorted by address *)
  mutable heap_top : int;  (** bytes sbrk'd so far *)
  mutable live : (int * int) list;  (** addr -> size of allocations *)
  mutable total_allocs : int;
  mutable sbrk_calls : int;
}

let align = 16
let round_up n = (n + align - 1) / align * align

let create () =
  { free_list = []; heap_top = 0; live = []; total_allocs = 0; sbrk_calls = 0 }

let rec insert_coalesce list blk =
  match list with
  | [] -> [ blk ]
  | hd :: tl ->
      if blk.addr + blk.size = hd.addr then
        { addr = blk.addr; size = blk.size + hd.size } :: tl
      else if hd.addr + hd.size = blk.addr then
        insert_coalesce tl { addr = hd.addr; size = hd.size + blk.size }
      else if blk.addr < hd.addr then blk :: hd :: tl
      else hd :: insert_coalesce tl blk

let grow t want =
  (* sbrk in 16 KB quanta, like umalloc's morecore *)
  let quantum = max (round_up want) 16384 in
  let base = Usys.sbrk quantum in
  t.sbrk_calls <- t.sbrk_calls + 1;
  if base < 0 then None
  else begin
    t.heap_top <- t.heap_top + quantum;
    Some { addr = base; size = quantum }
  end

let malloc t size =
  if size <= 0 then None
  else begin
    let need = round_up size in
    Usys.burn 120 (* allocator bookkeeping *);
    let rec first_fit acc = function
      | [] -> None
      | blk :: rest ->
          if blk.size >= need then begin
            let remainder =
              if blk.size > need then
                [ { addr = blk.addr + need; size = blk.size - need } ]
              else []
            in
            t.free_list <- List.rev_append acc (remainder @ rest);
            Some blk.addr
          end
          else first_fit (blk :: acc) rest
    in
    let result =
      match first_fit [] t.free_list with
      | Some addr -> Some addr
      | None -> (
          match grow t need with
          | None -> None
          | Some fresh ->
              t.free_list <- insert_coalesce t.free_list fresh;
              first_fit [] t.free_list)
    in
    match result with
    | Some addr ->
        t.live <- (addr, need) :: t.live;
        t.total_allocs <- t.total_allocs + 1;
        Some addr
    | None -> None
  end

let free t addr =
  Usys.burn 90;
  match List.assoc_opt addr t.live with
  | None -> invalid_arg "umalloc: free of unallocated address"
  | Some size ->
      t.live <- List.remove_assoc addr t.live;
      t.free_list <- insert_coalesce t.free_list { addr; size }

let live_bytes t = List.fold_left (fun acc (_, s) -> acc + s) 0 t.live
let live_count t = List.length t.live
let heap_bytes t = t.heap_top
let free_blocks t = List.length t.free_list
let total_allocs t = t.total_allocs
