(** The xv6-style filesystem ("xv6fs"), VOS's root filesystem on ramdisk.

    Faithful to the original layout with the paper's simplifications: no
    log/journal (crash consistency is explicitly excluded, §5.4), 1 KB
    blocks, 12 direct + 1 singly-indirect block per inode — giving the
    ~270 KB maximum file size the paper calls out as Prototype 5's
    motivation for FAT32 (§4.5).

    Disk layout in 1 KB blocks:
    [ 0: boot | 1: superblock | inodes | free bitmap | data... ]

    All block IO goes through an {!io} record; the kernel supplies an
    implementation backed by its buffer cache (charging simulated time),
    tests supply a raw in-memory one. *)

val block_bytes : int
(** 1024. *)

val ndirect : int
val nindirect : int

val max_file_bytes : int
(** [(ndirect + nindirect) * block_bytes] = 274432. *)

val max_name : int
(** Direntry name capacity: 14 bytes. *)

type io = {
  bread : int -> Bytes.t;  (** read fs block [n]; must return 1 KB *)
  bwrite : int -> Bytes.t -> unit;
}

val io_of_image : Bytes.t -> io
(** Zero-cost accessor over a raw image (for mkfs and tests). *)

type ftype = Dir | Reg | Dev

type stat = { st_inum : int; st_type : ftype; st_nlink : int; st_size : int }

type t
(** A mounted filesystem instance. *)

type inode
(** An in-core inode handle. *)

(** {1 Formatting and mounting} *)

val mkfs : total_blocks:int -> ninodes:int -> Bytes.t
(** Create a fresh image with an empty root directory. *)

val mount : io -> (t, string) result
(** Validate the superblock and return a handle. *)

val free_data_blocks : t -> int
(** Unallocated data blocks, from the bitmap (for /proc and tests). *)

(** {1 Inodes and paths} *)

val root : t -> inode
val lookup : t -> string -> (inode, string) result
(** Resolve an absolute path. *)

val stat_of : t -> inode -> stat
val inum : inode -> int

(** {1 Files} *)

val create : t -> string -> ftype -> (inode, string) result
(** Create a file/dir/device node; parent must exist; fails if the name
    exists. Directories get "." and ".." entries. *)

val readi : t -> inode -> off:int -> len:int -> (Bytes.t, string) result
(** Read up to [len] bytes at [off]; short reads at EOF. *)

val writei : t -> inode -> off:int -> data:Bytes.t -> (int, string) result
(** Write at [off], growing the file as needed; fails with "file too large"
    past [max_file_bytes]. Returns bytes written. *)

val truncate : t -> inode -> unit
(** Free all data blocks and set the size to 0. *)

val unlink : t -> string -> (unit, string) result
(** Remove a directory entry; frees the inode when the link count drops to
    zero. Refuses non-empty directories. *)

val readdir : t -> inode -> ((string * int) list, string) result
(** Entries of a directory (name, inum), excluding "." and "..". *)

val set_dev : t -> inode -> major:int -> minor:int -> unit
(** Stamp device numbers on a [Dev] inode. *)

val dev_of : t -> inode -> int * int
