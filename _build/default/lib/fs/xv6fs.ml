let block_bytes = 1024
let ndirect = 12
let nindirect = block_bytes / 4
let max_file_blocks = ndirect + nindirect
let max_file_bytes = max_file_blocks * block_bytes
let max_name = 14
let magic = 0x10203040
let inode_bytes = 64
let inodes_per_block = block_bytes / inode_bytes
let dirent_bytes = 16

type io = { bread : int -> Bytes.t; bwrite : int -> Bytes.t -> unit }

let io_of_image image =
  let nblocks = Bytes.length image / block_bytes in
  let bread n =
    if n < 0 || n >= nblocks then invalid_arg "xv6fs: block out of range";
    Bytes.sub image (n * block_bytes) block_bytes
  in
  let bwrite n data =
    if n < 0 || n >= nblocks then invalid_arg "xv6fs: block out of range";
    assert (Bytes.length data = block_bytes);
    Bytes.blit data 0 image (n * block_bytes) block_bytes
  in
  { bread; bwrite }

type ftype = Dir | Reg | Dev

type stat = { st_inum : int; st_type : ftype; st_nlink : int; st_size : int }

type superblock = {
  sb_size : int;  (* total blocks *)
  sb_ninodes : int;
  sb_inodestart : int;
  sb_bmapstart : int;
  sb_datastart : int;
}

type inode = {
  i_num : int;
  mutable i_type : ftype option;  (* None = free *)
  mutable i_major : int;
  mutable i_minor : int;
  mutable i_nlink : int;
  mutable i_size : int;
  i_addrs : int array;  (* ndirect + 1 entries *)
}

type t = { io : io; sb : superblock; cache : (int, inode) Hashtbl.t }

(* ---- little-endian accessors ---- *)

let get32 b off =
  Bytes.get_uint8 b off
  lor (Bytes.get_uint8 b (off + 1) lsl 8)
  lor (Bytes.get_uint8 b (off + 2) lsl 16)
  lor (Bytes.get_uint8 b (off + 3) lsl 24)

let put32 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 3) ((v lsr 24) land 0xff)

let get16 b off = Bytes.get_uint8 b off lor (Bytes.get_uint8 b (off + 1) lsl 8)

let put16 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff)

(* ---- superblock ---- *)

let layout ~total_blocks ~ninodes =
  let ninodeblocks = (ninodes + inodes_per_block - 1) / inodes_per_block in
  let nbitmap = ((total_blocks / 8) + block_bytes - 1) / block_bytes in
  let inodestart = 2 in
  let bmapstart = inodestart + ninodeblocks in
  let datastart = bmapstart + nbitmap in
  {
    sb_size = total_blocks;
    sb_ninodes = ninodes;
    sb_inodestart = inodestart;
    sb_bmapstart = bmapstart;
    sb_datastart = datastart;
  }

let write_superblock io sb =
  let b = Bytes.make block_bytes '\000' in
  put32 b 0 magic;
  put32 b 4 sb.sb_size;
  put32 b 8 sb.sb_ninodes;
  put32 b 12 sb.sb_inodestart;
  put32 b 16 sb.sb_bmapstart;
  put32 b 20 sb.sb_datastart;
  io.bwrite 1 b

let read_superblock io =
  let b = io.bread 1 in
  if get32 b 0 <> magic then Error "xv6fs: bad magic"
  else
    Ok
      {
        sb_size = get32 b 4;
        sb_ninodes = get32 b 8;
        sb_inodestart = get32 b 12;
        sb_bmapstart = get32 b 16;
        sb_datastart = get32 b 20;
      }

(* ---- on-disk inodes ---- *)

let itype_code = function
  | None -> 0
  | Some Dir -> 1
  | Some Reg -> 2
  | Some Dev -> 3

let itype_of_code = function
  | 0 -> None
  | 1 -> Some Dir
  | 2 -> Some Reg
  | 3 -> Some Dev
  | c -> invalid_arg (Printf.sprintf "xv6fs: bad inode type %d" c)

let inode_block sb inum = sb.sb_inodestart + (inum / inodes_per_block)
let inode_offset inum = inum mod inodes_per_block * inode_bytes

let read_dinode t inum =
  let b = t.io.bread (inode_block t.sb inum) in
  let off = inode_offset inum in
  let node =
    {
      i_num = inum;
      i_type = itype_of_code (get16 b off);
      i_major = get16 b (off + 2);
      i_minor = get16 b (off + 4);
      i_nlink = get16 b (off + 6);
      i_size = get32 b (off + 8);
      i_addrs = Array.make (ndirect + 1) 0;
    }
  in
  for i = 0 to ndirect do
    node.i_addrs.(i) <- get32 b (off + 12 + (4 * i))
  done;
  node

let write_dinode t node =
  let blockno = inode_block t.sb node.i_num in
  let b = t.io.bread blockno in
  let off = inode_offset node.i_num in
  put16 b off (itype_code node.i_type);
  put16 b (off + 2) node.i_major;
  put16 b (off + 4) node.i_minor;
  put16 b (off + 6) node.i_nlink;
  put32 b (off + 8) node.i_size;
  for i = 0 to ndirect do
    put32 b (off + 12 + (4 * i)) node.i_addrs.(i)
  done;
  t.io.bwrite blockno b

let iget t inum =
  match Hashtbl.find_opt t.cache inum with
  | Some node -> node
  | None ->
      let node = read_dinode t inum in
      Hashtbl.replace t.cache inum node;
      node

let ialloc t ftype =
  let rec scan inum =
    if inum >= t.sb.sb_ninodes then Error "xv6fs: out of inodes"
    else begin
      let node = iget t inum in
      if node.i_type = None then begin
        node.i_type <- Some ftype;
        node.i_major <- 0;
        node.i_minor <- 0;
        node.i_nlink <- 0;
        node.i_size <- 0;
        Array.fill node.i_addrs 0 (ndirect + 1) 0;
        write_dinode t node;
        Ok node
      end
      else scan (inum + 1)
    end
  in
  scan 1 (* inode 0 is reserved, 1 is the root *)

(* ---- block bitmap ---- *)

let balloc t =
  let rec scan_block bi =
    let base = bi * block_bytes * 8 in
    if base >= t.sb.sb_size then Error "xv6fs: out of data blocks"
    else begin
      let blockno = t.sb.sb_bmapstart + bi in
      let b = t.io.bread blockno in
      let found = ref None in
      (try
         for bit = 0 to (block_bytes * 8) - 1 do
           let blk = base + bit in
           if blk >= t.sb.sb_datastart && blk < t.sb.sb_size then begin
             let byte = Bytes.get_uint8 b (bit / 8) in
             if byte land (1 lsl (bit mod 8)) = 0 then begin
               Bytes.set_uint8 b (bit / 8) (byte lor (1 lsl (bit mod 8)));
               found := Some blk;
               raise Exit
             end
           end
         done
       with Exit -> ());
      match !found with
      | Some blk ->
          t.io.bwrite blockno b;
          t.io.bwrite blk (Bytes.make block_bytes '\000');
          Ok blk
      | None -> scan_block (bi + 1)
    end
  in
  scan_block 0

let bfree t blk =
  assert (blk >= t.sb.sb_datastart && blk < t.sb.sb_size);
  let blockno = t.sb.sb_bmapstart + (blk / (block_bytes * 8)) in
  let bit = blk mod (block_bytes * 8) in
  let b = t.io.bread blockno in
  let byte = Bytes.get_uint8 b (bit / 8) in
  assert (byte land (1 lsl (bit mod 8)) <> 0);
  Bytes.set_uint8 b (bit / 8) (byte land lnot (1 lsl (bit mod 8)));
  t.io.bwrite blockno b

let free_data_blocks t =
  let free = ref 0 in
  for blk = t.sb.sb_datastart to t.sb.sb_size - 1 do
    let blockno = t.sb.sb_bmapstart + (blk / (block_bytes * 8)) in
    let bit = blk mod (block_bytes * 8) in
    let b = t.io.bread blockno in
    if Bytes.get_uint8 b (bit / 8) land (1 lsl (bit mod 8)) = 0 then incr free
  done;
  !free

(* ---- block mapping ---- *)

(* Map file block [n] of [node] to a disk block, allocating if [alloc]. *)
let bmap t node n ~alloc =
  if n < 0 || n >= max_file_blocks then Error "xv6fs: file too large"
  else if n < ndirect then begin
    if node.i_addrs.(n) = 0 then
      if alloc then
        match balloc t with
        | Ok blk ->
            node.i_addrs.(n) <- blk;
            write_dinode t node;
            Ok blk
        | Error e -> Error e
      else Error "xv6fs: hole"
    else Ok node.i_addrs.(n)
  end
  else begin
    let get_indirect () =
      if node.i_addrs.(ndirect) = 0 then
        if alloc then
          match balloc t with
          | Ok blk ->
              node.i_addrs.(ndirect) <- blk;
              write_dinode t node;
              Ok blk
          | Error e -> Error e
        else Error "xv6fs: hole"
      else Ok node.i_addrs.(ndirect)
    in
    match get_indirect () with
    | Error e -> Error e
    | Ok ind ->
        let b = t.io.bread ind in
        let idx = n - ndirect in
        let blk = get32 b (4 * idx) in
        if blk = 0 then
          if alloc then
            match balloc t with
            | Ok fresh ->
                put32 b (4 * idx) fresh;
                t.io.bwrite ind b;
                Ok fresh
            | Error e -> Error e
          else Error "xv6fs: hole"
        else Ok blk
  end

let truncate t node =
  for i = 0 to ndirect - 1 do
    if node.i_addrs.(i) <> 0 then begin
      bfree t node.i_addrs.(i);
      node.i_addrs.(i) <- 0
    end
  done;
  if node.i_addrs.(ndirect) <> 0 then begin
    let ind = node.i_addrs.(ndirect) in
    let b = t.io.bread ind in
    for idx = 0 to nindirect - 1 do
      let blk = get32 b (4 * idx) in
      if blk <> 0 then bfree t blk
    done;
    bfree t ind;
    node.i_addrs.(ndirect) <- 0
  end;
  node.i_size <- 0;
  write_dinode t node

(* ---- file read/write ---- *)

let readi t node ~off ~len =
  match node.i_type with
  | None -> Error "xv6fs: read of free inode"
  | Some _ ->
      if off < 0 || len < 0 then Error "xv6fs: bad read range"
      else begin
        let len = min len (max 0 (node.i_size - off)) in
        let out = Bytes.create len in
        let copied = ref 0 in
        let err = ref None in
        while !copied < len && !err = None do
          let pos = off + !copied in
          let bn = pos / block_bytes in
          (match bmap t node bn ~alloc:false with
          | Ok blk ->
              let b = t.io.bread blk in
              let boff = pos mod block_bytes in
              let n = min (len - !copied) (block_bytes - boff) in
              Bytes.blit b boff out !copied n;
              copied := !copied + n
          | Error "xv6fs: hole" ->
              (* sparse region reads as zeros *)
              let boff = pos mod block_bytes in
              let n = min (len - !copied) (block_bytes - boff) in
              Bytes.fill out !copied n '\000';
              copied := !copied + n
          | Error e -> err := Some e)
        done;
        match !err with Some e -> Error e | None -> Ok out
      end

let writei t node ~off ~data =
  match node.i_type with
  | None -> Error "xv6fs: write to free inode"
  | Some _ ->
      let len = Bytes.length data in
      if off < 0 then Error "xv6fs: bad write offset"
      else if off + len > max_file_bytes then Error "xv6fs: file too large"
      else begin
        let written = ref 0 in
        let err = ref None in
        while !written < len && !err = None do
          let pos = off + !written in
          let bn = pos / block_bytes in
          match bmap t node bn ~alloc:true with
          | Ok blk ->
              let b = t.io.bread blk in
              let boff = pos mod block_bytes in
              let n = min (len - !written) (block_bytes - boff) in
              Bytes.blit data !written b boff n;
              t.io.bwrite blk b;
              written := !written + n
          | Error e -> err := Some e
        done;
        match !err with
        | Some e -> Error e
        | None ->
            if off + len > node.i_size then begin
              node.i_size <- off + len;
              write_dinode t node
            end;
            Ok len
      end

(* ---- directories ---- *)

let dirent_count node = node.i_size / dirent_bytes

let read_dirent t node idx =
  match readi t node ~off:(idx * dirent_bytes) ~len:dirent_bytes with
  | Error e -> Error e
  | Ok b ->
      let inum = get16 b 0 in
      let raw = Bytes.sub_string b 2 max_name in
      let name =
        match String.index_opt raw '\000' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      Ok (name, inum)

let write_dirent t node idx name inum =
  let b = Bytes.make dirent_bytes '\000' in
  put16 b 0 inum;
  String.iteri
    (fun i c -> if i < max_name then Bytes.set b (2 + i) c)
    name;
  match writei t node ~off:(idx * dirent_bytes) ~data:b with
  | Ok _ -> Ok ()
  | Error e -> Error e

let dirlookup t dir name =
  match dir.i_type with
  | Some Dir ->
      let n = dirent_count dir in
      let rec scan idx =
        if idx >= n then Error ("xv6fs: no such entry: " ^ name)
        else
          match read_dirent t dir idx with
          | Error e -> Error e
          | Ok (ename, einum) ->
              if einum <> 0 && String.equal ename name then Ok (iget t einum, idx)
              else scan (idx + 1)
      in
      scan 0
  | Some Reg | Some Dev | None -> Error "xv6fs: not a directory"

let dirlink t dir name inum =
  if String.length name = 0 || String.length name > max_name then
    Error "xv6fs: bad name length"
  else
    match dirlookup t dir name with
    | Ok _ -> Error ("xv6fs: exists: " ^ name)
    | Error _ ->
        (* reuse a freed slot if any, else append *)
        let n = dirent_count dir in
        let rec find_free idx =
          if idx >= n then n
          else
            match read_dirent t dir idx with
            | Ok (_, 0) -> idx
            | Ok _ | Error _ -> find_free (idx + 1)
        in
        write_dirent t dir (find_free 0) name inum

(* ---- paths ---- *)

let root t = iget t 1

let lookup t path =
  let rec walk node = function
    | [] -> Ok node
    | name :: rest -> (
        match dirlookup t node name with
        | Ok (child, _) -> walk child rest
        | Error e -> Error e)
  in
  walk (root t) (Vpath.split path)

let stat_of _t node =
  {
    st_inum = node.i_num;
    st_type = (match node.i_type with Some ty -> ty | None -> Reg);
    st_nlink = node.i_nlink;
    st_size = node.i_size;
  }

let inum node = node.i_num

let create t path ftype =
  let dir_path = Vpath.dirname path and name = Vpath.basename path in
  if String.equal name "/" then Error "xv6fs: cannot create root"
  else
    match lookup t dir_path with
    | Error e -> Error e
    | Ok parent -> (
        match dirlookup t parent name with
        | Ok _ -> Error ("xv6fs: exists: " ^ path)
        | Error _ -> (
            match ialloc t ftype with
            | Error e -> Error e
            | Ok node -> (
                node.i_nlink <- 1;
                write_dinode t node;
                let link_children () =
                  match ftype with
                  | Dir -> (
                      match dirlink t node "." node.i_num with
                      | Error e -> Error e
                      | Ok () -> (
                          match dirlink t node ".." parent.i_num with
                          | Error e -> Error e
                          | Ok () ->
                              parent.i_nlink <- parent.i_nlink + 1;
                              write_dinode t parent;
                              Ok ()))
                  | Reg | Dev -> Ok ()
                in
                match link_children () with
                | Error e -> Error e
                | Ok () -> (
                    match dirlink t parent name node.i_num with
                    | Error e -> Error e
                    | Ok () -> Ok node))))

let readdir t dir =
  match dir.i_type with
  | Some Dir ->
      let n = dirent_count dir in
      let rec scan idx acc =
        if idx >= n then Ok (List.rev acc)
        else
          match read_dirent t dir idx with
          | Error e -> Error e
          | Ok (_, 0) -> scan (idx + 1) acc
          | Ok (name, inum) ->
              if String.equal name "." || String.equal name ".." then
                scan (idx + 1) acc
              else scan (idx + 1) ((name, inum) :: acc)
      in
      scan 0 []
  | Some Reg | Some Dev | None -> Error "xv6fs: not a directory"

let dir_is_empty t dir =
  match readdir t dir with Ok [] -> true | Ok _ | Error _ -> false

let unlink t path =
  let dir_path = Vpath.dirname path and name = Vpath.basename path in
  if String.equal name "/" || String.equal name "." || String.equal name ".."
  then Error "xv6fs: cannot unlink"
  else
    match lookup t dir_path with
    | Error e -> Error e
    | Ok parent -> (
        match dirlookup t parent name with
        | Error e -> Error e
        | Ok (node, idx) ->
            if node.i_type = Some Dir && not (dir_is_empty t node) then
              Error "xv6fs: directory not empty"
            else begin
              (match write_dirent t parent idx "" 0 with
              | Ok () -> ()
              | Error e -> invalid_arg e);
              if node.i_type = Some Dir then begin
                parent.i_nlink <- parent.i_nlink - 1;
                write_dinode t parent
              end;
              node.i_nlink <- node.i_nlink - 1;
              if node.i_nlink <= 0 then begin
                truncate t node;
                node.i_type <- None;
                Hashtbl.remove t.cache node.i_num
              end;
              write_dinode t node;
              Ok ()
            end)

let set_dev t node ~major ~minor =
  node.i_major <- major;
  node.i_minor <- minor;
  write_dinode t node

let dev_of _t node = (node.i_major, node.i_minor)

(* ---- mkfs / mount ---- *)

let mount io =
  match read_superblock io with
  | Error e -> Error e
  | Ok sb -> Ok { io; sb; cache = Hashtbl.create 64 }

let mkfs ~total_blocks ~ninodes =
  let image = Bytes.make (total_blocks * block_bytes) '\000' in
  let io = io_of_image image in
  let sb = layout ~total_blocks ~ninodes in
  write_superblock io sb;
  let t = { io; sb; cache = Hashtbl.create 64 } in
  (* mark meta blocks used in the bitmap *)
  for blk = 0 to sb.sb_datastart - 1 do
    let blockno = sb.sb_bmapstart + (blk / (block_bytes * 8)) in
    let bit = blk mod (block_bytes * 8) in
    let b = io.bread blockno in
    Bytes.set_uint8 b (bit / 8)
      (Bytes.get_uint8 b (bit / 8) lor (1 lsl (bit mod 8)));
    io.bwrite blockno b
  done;
  (* root directory: inode 1 *)
  (match ialloc t Dir with
  | Ok node ->
      assert (node.i_num = 1);
      node.i_nlink <- 1;
      write_dinode t node;
      (match dirlink t node "." 1 with Ok () -> () | Error e -> invalid_arg e);
      (match dirlink t node ".." 1 with Ok () -> () | Error e -> invalid_arg e)
  | Error e -> invalid_arg e);
  image
