(** FAT32, the commodity filesystem of Prototype 5 (§4.5).

    A real FAT32 implementation in the spirit of Chan's FatFS: BPB parsing
    and formatting, two mirrored FATs, cluster-chain files, 8.3 short names
    with VFAT long-file-name entries, create/write/extend/unlink/mkdir, and
    — the paper's key performance point — {e range} reads that fetch whole
    contiguous cluster runs in one block-device command instead of going
    block by block.

    Like {!Xv6fs}, all device access goes through an {!io} record. The
    [read] callback's [count] tells the kernel adapter whether this is a
    single-sector access (which VOS routes through the buffer cache) or a
    multi-sector range (which VOS sends straight to the SD driver, §5.2). *)

type io = {
  read : lba:int -> count:int -> Bytes.t;
  write : lba:int -> data:Bytes.t -> unit;
}

val io_of_blockdev : Blockdev.t -> io
(** Direct accessor for tools and tests; raises [Invalid_argument] on device
    errors. *)

type t

type stat = {
  st_dir : bool;
  st_size : int;
  st_cluster : int;  (** first cluster; stable identity while the file lives *)
}

val mkfs : io -> total_sectors:int -> ?sectors_per_cluster:int -> unit -> unit
(** Format: writes BPB, FSInfo, both FATs and an empty root directory. *)

val mount : io -> (t, string) result

val cluster_bytes : t -> int

val free_clusters : t -> int

(** {1 Lookup} *)

val stat : t -> string -> (stat, string) result
(** Resolve an absolute path ("/" is the root directory). Long and short
    names both match, case-insensitively. *)

val readdir : t -> string -> ((string * stat) list, string) result
(** Directory listing with long names restored. *)

(** {1 Reading} *)

val read_file : t -> string -> off:int -> len:int -> (Bytes.t, string) result
(** Read with range optimization: contiguous cluster runs become single
    multi-sector [read] calls. Short reads at EOF. *)

(** {1 Writing} *)

val create : t -> string -> (unit, string) result
(** Create an empty file; parent directory must exist. *)

val mkdir : t -> string -> (unit, string) result

val write_file : t -> string -> off:int -> data:Bytes.t -> (int, string) result
(** Write in place, extending the cluster chain and directory entry size as
    needed. The file must exist. *)

val truncate : t -> string -> (unit, string) result
(** Free the chain, set size to 0. *)

val unlink : t -> string -> (unit, string) result
(** Remove a file or an empty directory. *)
