(** Block devices.

    Filesystems are written against this interface so the same code runs on
    the ramdisk (Prototype 4) and on SD-card partitions (Prototype 5). Time
    is charged by the IO implementation itself — the kernel wraps devices in
    accessors that burn simulated cycles in the calling task's context —
    so filesystem code stays cost-agnostic.

    Sectors are 512 bytes, matching {!Hw.Sd.sector_bytes}. *)

type t = {
  name : string;
  total_sectors : int;
  read_sectors : lba:int -> count:int -> (Bytes.t, string) result;
  write_sectors : lba:int -> data:Bytes.t -> (unit, string) result;
}

val sector_bytes : int

val ramdisk : name:string -> sectors:int -> t * Bytes.t
(** An in-memory device plus its backing store (for stamping images). *)

val of_image : name:string -> Bytes.t -> t
(** Wrap an existing buffer (must be sector-aligned in length). *)

val of_sd : Hw.Sd.t -> name:string -> first_lba:int -> sectors:int -> ?on_io:(int64 -> unit) -> unit -> t
(** A window onto an SD card starting at [first_lba]. Each operation's
    polling cost is reported to [on_io] (default: discarded) so the kernel
    can charge it to the running task. *)

val sub : t -> name:string -> first_lba:int -> sectors:int -> t
(** A sub-range view (a partition) of an existing device. *)
