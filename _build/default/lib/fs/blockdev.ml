type t = {
  name : string;
  total_sectors : int;
  read_sectors : lba:int -> count:int -> (Bytes.t, string) result;
  write_sectors : lba:int -> data:Bytes.t -> (unit, string) result;
}

let sector_bytes = 512

let of_image ~name image =
  let len = Bytes.length image in
  if len mod sector_bytes <> 0 then
    invalid_arg "Blockdev.of_image: not sector-aligned";
  let total = len / sector_bytes in
  let read_sectors ~lba ~count =
    if lba < 0 || count <= 0 || lba + count > total then
      Error (Printf.sprintf "%s: read [%d,%d) out of range" name lba (lba + count))
    else Ok (Bytes.sub image (lba * sector_bytes) (count * sector_bytes))
  in
  let write_sectors ~lba ~data =
    let n = Bytes.length data in
    if n = 0 || n mod sector_bytes <> 0 then
      Error (Printf.sprintf "%s: write not sector-aligned" name)
    else if lba < 0 || lba + (n / sector_bytes) > total then
      Error (Printf.sprintf "%s: write at %d out of range" name lba)
    else begin
      Bytes.blit data 0 image (lba * sector_bytes) n;
      Ok ()
    end
  in
  { name; total_sectors = total; read_sectors; write_sectors }

let ramdisk ~name ~sectors =
  let image = Bytes.make (sectors * sector_bytes) '\000' in
  (of_image ~name image, image)

let of_sd sd ~name ~first_lba ~sectors ?(on_io = fun _ -> ()) () =
  let read_sectors ~lba ~count =
    match Hw.Sd.read sd ~lba:(first_lba + lba) ~count with
    | Ok (data, cost) ->
        on_io cost;
        Ok data
    | Error e -> Error e
  in
  let write_sectors ~lba ~data =
    match Hw.Sd.write sd ~lba:(first_lba + lba) ~data with
    | Ok cost ->
        on_io cost;
        Ok ()
    | Error e -> Error e
  in
  { name; total_sectors = sectors; read_sectors; write_sectors }

let sub t ~name ~first_lba ~sectors =
  if first_lba < 0 || first_lba + sectors > t.total_sectors then
    invalid_arg "Blockdev.sub: out of range";
  {
    name;
    total_sectors = sectors;
    read_sectors = (fun ~lba ~count -> t.read_sectors ~lba:(first_lba + lba) ~count);
    write_sectors = (fun ~lba ~data -> t.write_sectors ~lba:(first_lba + lba) ~data);
  }
