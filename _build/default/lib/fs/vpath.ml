let split path =
  let parts = String.split_on_char '/' path in
  let resolve acc part =
    match part with
    | "" | "." -> acc
    | ".." -> ( match acc with [] -> [] | _ :: rest -> rest)
    | name -> name :: acc
  in
  List.rev (List.fold_left resolve [] parts)

let normalize path = "/" ^ String.concat "/" (split path)

let basename path =
  match List.rev (split path) with [] -> "/" | last :: _ -> last

let dirname path =
  match List.rev (split path) with
  | [] | [ _ ] -> "/"
  | _ :: rest -> "/" ^ String.concat "/" (List.rev rest)

let join dir name =
  if String.length name > 0 && name.[0] = '/' then normalize name
  else normalize (dir ^ "/" ^ name)

let rec list_is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' -> String.equal x y && list_is_prefix xs' ys'

let is_prefix ~prefix path = list_is_prefix (split prefix) (split path)

let strip_prefix ~prefix path =
  let rec strip xs ys =
    match (xs, ys) with
    | [], rest -> Some ("/" ^ String.concat "/" rest)
    | _, [] -> None
    | x :: xs', y :: ys' -> if String.equal x y then strip xs' ys' else None
  in
  strip (split prefix) (split path)
