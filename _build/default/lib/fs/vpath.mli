(** Path manipulation shared by the VFS and both filesystems. *)

val split : string -> string list
(** [split "/a//b/./c"] is [["a"; "b"; "c"]]. ".." is resolved lexically;
    leading ".." components at the root are dropped. *)

val normalize : string -> string
(** Canonical absolute form: [normalize "/a//b/../c"] is ["/a/c"]. *)

val basename : string -> string
(** Final component, or "/" for the root. *)

val dirname : string -> string
(** Everything but the final component, as a normalized absolute path. *)

val join : string -> string -> string
(** [join dir name]; if [name] is absolute it wins. *)

val is_prefix : prefix:string -> string -> bool
(** Component-wise prefix test on normalized paths: ["/d"] prefixes
    ["/d/x"] but not ["/dx"]. *)

val strip_prefix : prefix:string -> string -> string option
(** [strip_prefix ~prefix:"/d" "/d/x/y"] is [Some "/x/y"];
    the prefix itself maps to [Some "/"]. *)
