type partition = { part_type : int; first_lba : int; sectors : int }

let fat32_lba_type = 0x0c
let native_type = 0x83

let entry_offset i = 446 + (i * 16)

let put_le32 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 3) ((v lsr 24) land 0xff)

let get_le32 b off =
  Bytes.get_uint8 b off
  lor (Bytes.get_uint8 b (off + 1) lsl 8)
  lor (Bytes.get_uint8 b (off + 2) lsl 16)
  lor (Bytes.get_uint8 b (off + 3) lsl 24)

let write dev parts =
  if Array.length parts > 4 then Error "mbr: more than 4 partitions"
  else begin
    let sector = Bytes.make Blockdev.sector_bytes '\000' in
    Array.iteri
      (fun i p ->
        let off = entry_offset i in
        Bytes.set_uint8 sector (off + 4) p.part_type;
        put_le32 sector (off + 8) p.first_lba;
        put_le32 sector (off + 12) p.sectors)
      parts;
    Bytes.set_uint8 sector 510 0x55;
    Bytes.set_uint8 sector 511 0xaa;
    dev.Blockdev.write_sectors ~lba:0 ~data:sector
  end

let read dev =
  match dev.Blockdev.read_sectors ~lba:0 ~count:1 with
  | Error e -> Error e
  | Ok sector ->
      if Bytes.get_uint8 sector 510 <> 0x55 || Bytes.get_uint8 sector 511 <> 0xaa
      then Error "mbr: bad signature"
      else
        Ok
          (Array.init 4 (fun i ->
               let off = entry_offset i in
               {
                 part_type = Bytes.get_uint8 sector (off + 4);
                 first_lba = get_le32 sector (off + 8);
                 sectors = get_le32 sector (off + 12);
               }))
