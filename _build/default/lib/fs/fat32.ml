let sector_bytes = 512
let reserved_sectors = 32
let num_fats = 2
let dirent_bytes = 32
let eoc = 0x0FFFFFF8 (* any value >= this terminates a chain *)
let fat_mask = 0x0FFFFFFF

type io = {
  read : lba:int -> count:int -> Bytes.t;
  write : lba:int -> data:Bytes.t -> unit;
}

let io_of_blockdev (dev : Blockdev.t) =
  let read ~lba ~count =
    match dev.Blockdev.read_sectors ~lba ~count with
    | Ok b -> b
    | Error e -> invalid_arg e
  in
  let write ~lba ~data =
    match dev.Blockdev.write_sectors ~lba ~data with
    | Ok () -> ()
    | Error e -> invalid_arg e
  in
  { read; write }

type t = {
  io : io;
  spc : int;  (* sectors per cluster *)
  fat_start : int;  (* lba of first FAT *)
  fat_sectors : int;
  data_start : int;  (* lba of cluster 2 *)
  total_clusters : int;  (* data clusters, numbered 2..total+1 *)
  root_cluster : int;
  mutable free_hint : int;
}

type stat = { st_dir : bool; st_size : int; st_cluster : int }

(* ---- little-endian ---- *)

let get16 b off = Bytes.get_uint8 b off lor (Bytes.get_uint8 b (off + 1) lsl 8)

let get32 b off = get16 b off lor (get16 b (off + 2) lsl 16)

let put16 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff)

let put32 b off v =
  put16 b off (v land 0xffff);
  put16 b (off + 2) ((v lsr 16) land 0xffff)

(* ---- formatting ---- *)

let compute_fat_sectors ~total_sectors ~spc =
  (* Fixed point: clusters depend on FAT size and vice versa. *)
  let fat_sectors = ref 1 in
  let stable = ref false in
  while not !stable do
    let data = total_sectors - reserved_sectors - (num_fats * !fat_sectors) in
    let clusters = data / spc in
    let need = ((clusters + 2) * 4 + sector_bytes - 1) / sector_bytes in
    if need = !fat_sectors then stable := true else fat_sectors := need
  done;
  !fat_sectors

let mkfs io ~total_sectors ?(sectors_per_cluster = 8) () =
  let spc = sectors_per_cluster in
  assert (spc > 0 && spc land (spc - 1) = 0 && spc <= 128);
  let fat_sectors = compute_fat_sectors ~total_sectors ~spc in
  let bpb = Bytes.make sector_bytes '\000' in
  Bytes.set_uint8 bpb 0 0xeb;
  Bytes.set_uint8 bpb 1 0x58;
  Bytes.set_uint8 bpb 2 0x90;
  Bytes.blit_string "VOSFAT  " 0 bpb 3 8;
  put16 bpb 11 sector_bytes;
  Bytes.set_uint8 bpb 13 spc;
  put16 bpb 14 reserved_sectors;
  Bytes.set_uint8 bpb 16 num_fats;
  Bytes.set_uint8 bpb 21 0xf8;
  put32 bpb 32 total_sectors;
  put32 bpb 36 fat_sectors;
  put32 bpb 44 2 (* root cluster *);
  put16 bpb 48 1 (* fsinfo *);
  Bytes.blit_string "FAT32   " 0 bpb 82 8;
  Bytes.set_uint8 bpb 510 0x55;
  Bytes.set_uint8 bpb 511 0xaa;
  io.write ~lba:0 ~data:bpb;
  (* FSInfo with free-count unknown *)
  let fsinfo = Bytes.make sector_bytes '\000' in
  put32 fsinfo 0 0x41615252;
  put32 fsinfo 484 0x61417272;
  put32 fsinfo 488 0xffffffff;
  put32 fsinfo 492 0xffffffff;
  Bytes.set_uint8 fsinfo 510 0x55;
  Bytes.set_uint8 fsinfo 511 0xaa;
  io.write ~lba:1 ~data:fsinfo;
  (* zero both FATs, then set the reserved head entries *)
  let zero = Bytes.make sector_bytes '\000' in
  for f = 0 to num_fats - 1 do
    for s = 0 to fat_sectors - 1 do
      io.write ~lba:(reserved_sectors + (f * fat_sectors) + s) ~data:zero
    done
  done;
  let fat0 = Bytes.make sector_bytes '\000' in
  put32 fat0 0 0x0ffffff8;
  put32 fat0 4 fat_mask;
  put32 fat0 8 fat_mask (* root cluster 2: EOC *);
  io.write ~lba:reserved_sectors ~data:fat0;
  io.write ~lba:(reserved_sectors + fat_sectors) ~data:fat0;
  (* zero the root directory cluster *)
  let data_start = reserved_sectors + (num_fats * fat_sectors) in
  for s = 0 to spc - 1 do
    io.write ~lba:(data_start + s) ~data:zero
  done

let mount io =
  let bpb = io.read ~lba:0 ~count:1 in
  if Bytes.get_uint8 bpb 510 <> 0x55 || Bytes.get_uint8 bpb 511 <> 0xaa then
    Error "fat32: bad BPB signature"
  else if get16 bpb 11 <> sector_bytes then Error "fat32: unsupported sector size"
  else begin
    let spc = Bytes.get_uint8 bpb 13 in
    let reserved = get16 bpb 14 in
    let fat_sectors = get32 bpb 36 in
    let total = get32 bpb 32 in
    let data_start = reserved + (num_fats * fat_sectors) in
    let total_clusters = (total - data_start) / spc in
    Ok
      {
        io;
        spc;
        fat_start = reserved;
        fat_sectors;
        data_start;
        total_clusters;
        root_cluster = get32 bpb 44;
        free_hint = 3;
      }
  end

let cluster_bytes t = t.spc * sector_bytes

let cluster_lba t cl = t.data_start + ((cl - 2) * t.spc)

(* ---- FAT access ---- *)

let fat_get t cl =
  let lba = t.fat_start + (cl * 4 / sector_bytes) in
  let b = t.io.read ~lba ~count:1 in
  get32 b (cl * 4 mod sector_bytes) land fat_mask

let fat_set t cl v =
  let off_sector = cl * 4 / sector_bytes in
  let off = cl * 4 mod sector_bytes in
  for f = 0 to num_fats - 1 do
    let lba = t.fat_start + (f * t.fat_sectors) + off_sector in
    let b = t.io.read ~lba ~count:1 in
    put32 b off (v land fat_mask);
    t.io.write ~lba ~data:b
  done

let max_cluster t = t.total_clusters + 1

let alloc_cluster t =
  let rec scan tried cl =
    if tried > t.total_clusters then Error "fat32: no free clusters"
    else begin
      let cl = if cl > max_cluster t then 2 else cl in
      if fat_get t cl = 0 then begin
        fat_set t cl eoc;
        t.free_hint <- cl + 1;
        (* fresh clusters are zeroed, as FatFS does for directories *)
        let zero = Bytes.make (cluster_bytes t) '\000' in
        t.io.write ~lba:(cluster_lba t cl) ~data:zero;
        Ok cl
      end
      else scan (tried + 1) (cl + 1)
    end
  in
  scan 0 (max 2 t.free_hint)

let free_chain t first =
  let rec go cl =
    if cl >= 2 && cl < eoc then begin
      let next = fat_get t cl in
      fat_set t cl 0;
      go next
    end
  in
  go first

let free_clusters t =
  let free = ref 0 in
  for cl = 2 to max_cluster t do
    if fat_get t cl = 0 then incr free
  done;
  !free

let chain_of t first =
  let rec go acc cl =
    if cl < 2 || cl >= eoc then List.rev acc else go (cl :: acc) (fat_get t cl)
  in
  go [] first

(* ---- short names and LFN ---- *)

let valid_short_char c =
  match c with
  | 'A' .. 'Z' | '0' .. '9' | '!' | '#' | '$' | '%' | '&' | '\'' | '('
  | ')' | '-' | '@' | '^' | '_' | '`' | '{' | '}' | '~' ->
      true
  | _ -> false

let to_short_base name =
  let upper = String.uppercase_ascii name in
  let dot = String.rindex_opt upper '.' in
  let stem, ext =
    match dot with
    | Some i when i > 0 ->
        (String.sub upper 0 i, String.sub upper (i + 1) (String.length upper - i - 1))
    | Some _ | None -> (upper, "")
  in
  let clean s =
    String.to_seq s
    |> Seq.filter valid_short_char
    |> String.of_seq
  in
  let stem = clean stem and ext = clean ext in
  let stem = if String.length stem > 8 then String.sub stem 0 6 ^ "~1" else stem in
  let ext = if String.length ext > 3 then String.sub ext 0 3 else ext in
  ((if stem = "" then "X" else stem), ext)

let pack_short (stem, ext) =
  let b = Bytes.make 11 ' ' in
  String.iteri (fun i c -> if i < 8 then Bytes.set b i c) stem;
  String.iteri (fun i c -> if i < 3 then Bytes.set b (8 + i) c) ext;
  Bytes.to_string b

let unpack_short s =
  let stem = String.trim (String.sub s 0 8) in
  let ext = String.trim (String.sub s 8 3) in
  if ext = "" then stem else stem ^ "." ^ ext

let short_checksum s =
  let sum = ref 0 in
  String.iter
    (fun c -> sum := (((!sum land 1) lsl 7) + (!sum lsr 1) + Char.code c) land 0xff)
    s;
  !sum

let needs_lfn name =
  let stem, ext = to_short_base name in
  let reconstructed = if ext = "" then stem else stem ^ "." ^ ext in
  not (String.equal (String.uppercase_ascii name) reconstructed)
  || String.contains stem '~'

(* One LFN entry stores 13 UCS-2 characters at fixed offsets. *)
let lfn_char_offsets = [| 1; 3; 5; 7; 9; 14; 16; 18; 20; 22; 24; 28; 30 |]

let make_lfn_entries name checksum =
  let chars = Array.of_seq (String.to_seq name) in
  let n = Array.length chars in
  let nentries = (n + 12) / 13 in
  List.init nentries (fun i ->
      let e = Bytes.make dirent_bytes '\000' in
      let seq = i + 1 in
      let seq = if i = nentries - 1 then seq lor 0x40 else seq in
      Bytes.set_uint8 e 0 seq;
      Bytes.set_uint8 e 11 0x0f;
      Bytes.set_uint8 e 13 checksum;
      for j = 0 to 12 do
        let idx = (i * 13) + j in
        let off = lfn_char_offsets.(j) in
        if idx < n then begin
          Bytes.set_uint8 e off (Char.code chars.(idx));
          Bytes.set_uint8 e (off + 1) 0
        end
        else if idx = n then begin
          Bytes.set_uint8 e off 0;
          Bytes.set_uint8 e (off + 1) 0
        end
        else begin
          Bytes.set_uint8 e off 0xff;
          Bytes.set_uint8 e (off + 1) 0xff
        end
      done;
      e)
  |> List.rev (* stored last-first on disk *)

let lfn_fragment e =
  let buf = Buffer.create 13 in
  (try
     Array.iter
       (fun off ->
         let lo = Bytes.get_uint8 e off and hi = Bytes.get_uint8 e (off + 1) in
         let code = lo lor (hi lsl 8) in
         if code = 0 || code = 0xffff then raise Exit;
         Buffer.add_char buf (if code < 256 then Char.chr code else '?'))
       lfn_char_offsets
   with Exit -> ());
  Buffer.contents buf

(* ---- directory iteration ---- *)

type raw_entry = {
  re_name : string;  (* long name if present, else short *)
  re_short : string;  (* packed 11-byte short name *)
  re_attr : int;
  re_cluster : int;
  re_size : int;
  re_slots : (int * int) list;  (* (cluster, index) of every slot incl. LFN *)
}

let dir_clusters t first = chain_of t first

let entries_per_cluster t = cluster_bytes t / dirent_bytes

let read_cluster t cl = t.io.read ~lba:(cluster_lba t cl) ~count:t.spc

let write_cluster t cl data = t.io.write ~lba:(cluster_lba t cl) ~data

(* Fold over the live entries of a directory. *)
let iter_dir t first_cluster f =
  let pending_lfn = Buffer.create 64 in
  let pending_slots = ref [] in
  let stop = ref false in
  let clusters = dir_clusters t first_cluster in
  List.iter
    (fun cl ->
      if not !stop then begin
        let data = read_cluster t cl in
        for idx = 0 to entries_per_cluster t - 1 do
          if not !stop then begin
            let off = idx * dirent_bytes in
            let first = Bytes.get_uint8 data off in
            if first = 0 then stop := true
            else if first = 0xe5 then begin
              Buffer.clear pending_lfn;
              pending_slots := []
            end
            else begin
              let attr = Bytes.get_uint8 data (off + 11) in
              if attr = 0x0f then begin
                let e = Bytes.sub data off dirent_bytes in
                (* LFN entries appear last-first; prepend fragments *)
                let frag = lfn_fragment e in
                let existing = Buffer.contents pending_lfn in
                Buffer.clear pending_lfn;
                Buffer.add_string pending_lfn (frag ^ existing);
                pending_slots := (cl, idx) :: !pending_slots
              end
              else begin
                let short = Bytes.sub_string data off 11 in
                let long = Buffer.contents pending_lfn in
                Buffer.clear pending_lfn;
                let slots = List.rev ((cl, idx) :: !pending_slots) in
                pending_slots := [];
                let entry =
                  {
                    re_name = (if long = "" then unpack_short short else long);
                    re_short = short;
                    re_attr = attr;
                    re_cluster =
                      (get16 data (off + 20) lsl 16) lor get16 data (off + 26);
                    re_size = get32 data (off + 28);
                    re_slots = slots;
                  }
                in
                f entry
              end
            end
          end
        done
      end)
    clusters

let find_entry t dir_cluster name =
  let target = String.lowercase_ascii name in
  let result = ref None in
  iter_dir t dir_cluster (fun e ->
      if !result = None then begin
        if String.equal (String.lowercase_ascii e.re_name) target then
          result := Some e
      end);
  !result

(* ---- path resolution ---- *)

let resolve_dir t path =
  (* Resolve a path to (dir_cluster, is_dir, size, entry option). Root has
     no entry of its own. *)
  let rec walk cluster = function
    | [] -> Ok (`Dir cluster)
    | [ last ] -> (
        match find_entry t cluster last with
        | None -> Error ("fat32: not found: " ^ last)
        | Some e -> Ok (`Entry (cluster, e)))
    | comp :: rest -> (
        match find_entry t cluster comp with
        | None -> Error ("fat32: not found: " ^ comp)
        | Some e ->
            if e.re_attr land 0x10 <> 0 then
              let sub = if e.re_cluster = 0 then t.root_cluster else e.re_cluster in
              walk sub rest
            else Error ("fat32: not a directory: " ^ comp))
  in
  walk t.root_cluster (Vpath.split path)

let stat t path =
  match resolve_dir t path with
  | Error e -> Error e
  | Ok (`Dir cl) -> Ok { st_dir = true; st_size = 0; st_cluster = cl }
  | Ok (`Entry (_, e)) ->
      Ok
        {
          st_dir = e.re_attr land 0x10 <> 0;
          st_size = e.re_size;
          st_cluster = e.re_cluster;
        }

let readdir t path =
  let list_of_cluster cl =
    let acc = ref [] in
    iter_dir t cl (fun e ->
        if not (String.equal e.re_name ".") && not (String.equal e.re_name "..")
        then
          acc :=
            ( e.re_name,
              {
                st_dir = e.re_attr land 0x10 <> 0;
                st_size = e.re_size;
                st_cluster = e.re_cluster;
              } )
            :: !acc);
    Ok (List.rev !acc)
  in
  match resolve_dir t path with
  | Error e -> Error e
  | Ok (`Dir cl) -> list_of_cluster cl
  | Ok (`Entry (_, e)) ->
      if e.re_attr land 0x10 <> 0 then
        list_of_cluster (if e.re_cluster = 0 then t.root_cluster else e.re_cluster)
      else Error ("fat32: not a directory: " ^ path)

(* ---- range reads ---- *)

(* Merge a cluster list into maximal contiguous (first, count) runs. *)
let runs_of_clusters clusters =
  let rec go acc = function
    | [] -> List.rev acc
    | cl :: rest -> (
        match acc with
        | (first, count) :: acc' when first + count = cl ->
            go ((first, count + 1) :: acc') rest
        | _ -> go ((cl, 1) :: acc) rest)
  in
  go [] clusters

let read_file t path ~off ~len =
  match stat t path with
  | Error e -> Error e
  | Ok st ->
      if st.st_dir then Error ("fat32: is a directory: " ^ path)
      else if off < 0 || len < 0 then Error "fat32: bad range"
      else begin
        let len = min len (max 0 (st.st_size - off)) in
        let out = Bytes.create len in
        if len = 0 then Ok out
        else begin
          let cb = cluster_bytes t in
          let chain = chain_of t st.st_cluster in
          let first_cl_idx = off / cb in
          let last_cl_idx = (off + len - 1) / cb in
          let wanted =
            List.filteri (fun i _ -> i >= first_cl_idx && i <= last_cl_idx) chain
          in
          if List.length wanted < last_cl_idx - first_cl_idx + 1 then
            Error "fat32: chain shorter than size"
          else begin
            (* Fetch maximal contiguous runs with single commands. *)
            let runs = runs_of_clusters wanted in
            let buf = Buffer.create (List.length wanted * cb) in
            List.iter
              (fun (first, count) ->
                let data =
                  t.io.read ~lba:(cluster_lba t first) ~count:(count * t.spc)
                in
                Buffer.add_bytes buf data)
              runs;
            let span = Buffer.to_bytes buf in
            let skip = off - (first_cl_idx * cb) in
            Bytes.blit span skip out 0 len;
            Ok out
          end
        end
      end

(* ---- directory entry creation ---- *)

let short_exists t dir_cluster short =
  let found = ref false in
  iter_dir t dir_cluster (fun e ->
      if String.equal e.re_short short then found := true);
  !found

let unique_short t dir_cluster name =
  let stem, ext = to_short_base name in
  let candidate = pack_short (stem, ext) in
  if not (short_exists t dir_cluster candidate) then candidate
  else begin
    let rec try_tail n =
      if n > 9999 then invalid_arg "fat32: short-name space exhausted"
      else begin
        let tail = "~" ^ string_of_int n in
        let keep = min (String.length stem) (8 - String.length tail) in
        let cand = pack_short (String.sub stem 0 keep ^ tail, ext) in
        if short_exists t dir_cluster cand then try_tail (n + 1) else cand
      end
    in
    try_tail 1
  end

(* Extend a directory with one more cluster; returns the new cluster. *)
let extend_dir t dir_cluster =
  match alloc_cluster t with
  | Error e -> Error e
  | Ok fresh ->
      let rec last cl =
        let next = fat_get t cl in
        if next >= eoc || next < 2 then cl else last next
      in
      fat_set t (last dir_cluster) fresh;
      Ok fresh

(* Find [n] consecutive free slots in a directory, extending if needed.
   Returns them as (cluster, index) pairs. *)
let rec find_free_slots t dir_cluster n =
  let run = ref [] in
  let result = ref None in
  List.iter
    (fun cl ->
      if !result = None then begin
        let data = read_cluster t cl in
        for idx = 0 to entries_per_cluster t - 1 do
          if !result = None then begin
            let first = Bytes.get_uint8 data (idx * dirent_bytes) in
            if first = 0 || first = 0xe5 then begin
              run := (cl, idx) :: !run;
              if List.length !run = n then result := Some (List.rev !run)
            end
            else run := []
          end
        done
      end)
    (dir_clusters t dir_cluster);
  match !result with
  | Some found -> Ok found
  | None -> (
      match extend_dir t dir_cluster with
      | Error e -> Error e
      | Ok _ -> find_free_slots t dir_cluster n)

let write_slot t (cl, idx) entry =
  let data = read_cluster t cl in
  Bytes.blit entry 0 data (idx * dirent_bytes) dirent_bytes;
  write_cluster t cl data

let make_short_entry ~short ~attr ~cluster ~size =
  let e = Bytes.make dirent_bytes '\000' in
  Bytes.blit_string short 0 e 0 11;
  Bytes.set_uint8 e 11 attr;
  put16 e 20 ((cluster lsr 16) land 0xffff);
  put16 e 26 (cluster land 0xffff);
  put32 e 28 size;
  e

let add_entry t dir_cluster name ~attr ~cluster ~size =
  if String.length name = 0 || String.length name > 255 then
    Error "fat32: bad name"
  else if find_entry t dir_cluster name <> None then
    Error ("fat32: exists: " ^ name)
  else begin
    let short = unique_short t dir_cluster name in
    let lfn = if needs_lfn name then make_lfn_entries name (short_checksum short) else [] in
    let nslots = List.length lfn + 1 in
    match find_free_slots t dir_cluster nslots with
    | Error e -> Error e
    | Ok slots ->
        let entries = lfn @ [ make_short_entry ~short ~attr ~cluster ~size ] in
        List.iter2 (write_slot t) slots entries;
        Ok ()
  end

let parent_and_name t path =
  let dir = Vpath.dirname path and name = Vpath.basename path in
  if String.equal name "/" then Error "fat32: no name"
  else
    match resolve_dir t dir with
    | Error e -> Error e
    | Ok (`Dir cl) -> Ok (cl, name)
    | Ok (`Entry (_, e)) ->
        if e.re_attr land 0x10 <> 0 then
          Ok ((if e.re_cluster = 0 then t.root_cluster else e.re_cluster), name)
        else Error ("fat32: not a directory: " ^ dir)

let create t path =
  match parent_and_name t path with
  | Error e -> Error e
  | Ok (dir_cl, name) -> add_entry t dir_cl name ~attr:0x20 ~cluster:0 ~size:0

let mkdir t path =
  match parent_and_name t path with
  | Error e -> Error e
  | Ok (dir_cl, name) -> (
      match alloc_cluster t with
      | Error e -> Error e
      | Ok cl -> (
          match add_entry t dir_cl name ~attr:0x10 ~cluster:cl ~size:0 with
          | Error e ->
              free_chain t cl;
              Error e
          | Ok () ->
              let dot = make_short_entry ~short:(pack_short (".", "")) ~attr:0x10 ~cluster:cl ~size:0 in
              let dotdot =
                make_short_entry ~short:(pack_short ("..", "")) ~attr:0x10
                  ~cluster:(if dir_cl = t.root_cluster then 0 else dir_cl)
                  ~size:0
              in
              write_slot t (cl, 0) dot;
              write_slot t (cl, 1) dotdot;
              Ok ()))

(* Update the short entry of an existing file in place. *)
let update_entry t path ~cluster ~size =
  match parent_and_name t path with
  | Error e -> Error e
  | Ok (dir_cl, name) -> (
      match find_entry t dir_cl name with
      | None -> Error ("fat32: not found: " ^ path)
      | Some e ->
          let slot = List.nth e.re_slots (List.length e.re_slots - 1) in
          let entry =
            make_short_entry ~short:e.re_short ~attr:e.re_attr ~cluster ~size
          in
          write_slot t slot entry;
          Ok ())

let write_file t path ~off ~data =
  match stat t path with
  | Error e -> Error e
  | Ok st ->
      if st.st_dir then Error ("fat32: is a directory: " ^ path)
      else if off < 0 then Error "fat32: bad offset"
      else begin
        let len = Bytes.length data in
        let cb = cluster_bytes t in
        let end_pos = off + len in
        let clusters_needed = max 1 ((end_pos + cb - 1) / cb) in
        (* Ensure the chain is long enough, allocating the head if absent. *)
        let head = ref st.st_cluster in
        let err = ref None in
        if !head = 0 then begin
          match alloc_cluster t with
          | Ok cl -> head := cl
          | Error e -> err := Some e
        end;
        (match !err with
        | Some _ -> ()
        | None ->
            let chain = ref (chain_of t !head) in
            while List.length !chain < clusters_needed && !err = None do
              match extend_dir t !head with
              | Ok _ -> chain := chain_of t !head
              | Error e -> err := Some e
            done);
        match !err with
        | Some e -> Error e
        | None ->
            let chain = Array.of_list (chain_of t !head) in
            let written = ref 0 in
            while !written < len do
              let pos = off + !written in
              let ci = pos / cb in
              let coff = pos mod cb in
              let n = min (len - !written) (cb - coff) in
              let cl = chain.(ci) in
              if n = cb then begin
                (* full-cluster write: no read-modify *)
                write_cluster t cl (Bytes.sub data !written cb)
              end
              else begin
                let cur = read_cluster t cl in
                Bytes.blit data !written cur coff n;
                write_cluster t cl cur
              end;
              written := !written + n
            done;
            let new_size = max st.st_size end_pos in
            (match update_entry t path ~cluster:!head ~size:new_size with
            | Ok () -> ()
            | Error e -> invalid_arg e);
            Ok len
      end

let truncate t path =
  match stat t path with
  | Error e -> Error e
  | Ok st ->
      if st.st_dir then Error ("fat32: is a directory: " ^ path)
      else begin
        if st.st_cluster >= 2 then free_chain t st.st_cluster;
        update_entry t path ~cluster:0 ~size:0
      end

let unlink t path =
  match parent_and_name t path with
  | Error e -> Error e
  | Ok (dir_cl, name) -> (
      match find_entry t dir_cl name with
      | None -> Error ("fat32: not found: " ^ path)
      | Some e ->
          let is_dir = e.re_attr land 0x10 <> 0 in
          let check_empty () =
            if not is_dir then Ok ()
            else begin
              let count = ref 0 in
              iter_dir t e.re_cluster (fun child ->
                  if
                    (not (String.equal child.re_name "."))
                    && not (String.equal child.re_name "..")
                  then incr count);
              if !count = 0 then Ok () else Error "fat32: directory not empty"
            end
          in
          (match check_empty () with
          | Error err -> Error err
          | Ok () ->
              List.iter
                (fun (cl, idx) ->
                  let data = read_cluster t cl in
                  Bytes.set_uint8 data (idx * dirent_bytes) 0xe5;
                  write_cluster t cl data)
                e.re_slots;
              if e.re_cluster >= 2 then free_chain t e.re_cluster;
              Ok ()))
