lib/fs/xv6fs.mli: Bytes
