lib/fs/vpath.mli:
