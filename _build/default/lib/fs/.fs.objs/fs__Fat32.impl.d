lib/fs/fat32.ml: Array Blockdev Buffer Bytes Char List Seq String Vpath
