lib/fs/mbr.mli: Blockdev
