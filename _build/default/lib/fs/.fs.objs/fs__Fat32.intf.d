lib/fs/fat32.mli: Blockdev Bytes
