lib/fs/xv6fs.ml: Array Bytes Hashtbl List Printf String Vpath
