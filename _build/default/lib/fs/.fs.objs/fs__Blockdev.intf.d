lib/fs/blockdev.mli: Bytes Hw
