lib/fs/vpath.ml: List String
