lib/fs/blockdev.ml: Bytes Hw Printf
