lib/fs/mbr.ml: Array Blockdev Bytes
