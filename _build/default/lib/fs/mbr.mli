(** Master boot record partition table.

    VOS's SD card carries two partitions (§3): partition 1 holds the kernel
    image (with the ramdisk packed inside) and partition 2 is the FAT32
    user-file area. This module reads and writes the classic 4-entry MBR at
    sector 0. *)

type partition = {
  part_type : int;  (** 0x0c = FAT32 LBA, 0x83 = native, 0 = empty *)
  first_lba : int;
  sectors : int;
}

val fat32_lba_type : int
val native_type : int

val write : Blockdev.t -> partition array -> (unit, string) result
(** Write up to 4 entries plus the 0x55AA signature. *)

val read : Blockdev.t -> (partition array, string) result
(** Parse sector 0; fails if the signature is missing. Returns the 4 slots,
    empty ones with [part_type = 0]. *)
