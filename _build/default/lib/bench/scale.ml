(** Figure 10: multicore scalability.

    Two workloads, as in the paper: multiprogrammed (eight simultaneous
    mario instances; FPS per instance) and multithreaded (the blockchain
    miner; aggregate hash throughput). Core count varies 1–4 by switching
    the multicore feature and capping active cores via a platform tweak.
    The figure's claim — proportional growth, all cores >95% busy — is
    checked from the scheduler's own busy accounting. *)

type point = {
  cores : int;
  per_instance : float;  (** FPS per mario instance / kH/s per run *)
  utilization : float;  (** mean busy fraction over active cores *)
}

let platform_with_cores cores =
  { Hw.Board.pi3 with Hw.Board.num_cores = cores }

let boot_with_cores ~seed cores =
  let config_tweak c = { c with Core.Kconfig.multicore = cores > 1 } in
  Proto.Stage.boot
    ~platform:(platform_with_cores cores)
    ~seed ~config_tweak ~prototype:5 ()

let utilization kernel ~cores ~from_ns ~busy0 ~until_ns =
  let total = ref 0.0 in
  for c = 0 to cores - 1 do
    let busy =
      Int64.sub (Core.Sched.core_busy_ns kernel.Core.Kernel.sched c) busy0.(c)
    in
    total :=
      !total
      +. Int64.to_float busy /. Int64.to_float (Int64.sub until_ns from_ns)
  done;
  !total /. float_of_int cores

(* Eight mario instances, per-instance FPS. *)
let mario_multi ~seed ~cores ~instances ~measure_s =
  let stage = boot_with_cores ~seed cores in
  let kernel = stage.Proto.Stage.kernel in
  let pids =
    List.init instances (fun i ->
        (Proto.Stage.start stage "mario"
           [ "mario"; (if i mod 2 = 0 then "noinput" else "sdl"); "0" ])
          .Core.Task.pid)
  in
  Proto.Stage.run_for stage (Sim.Engine.sec 2) (* warm-up *);
  let from_ns = Core.Kernel.now kernel in
  let frames0 =
    List.map (fun pid -> Core.Sched.frames_presented kernel.Core.Kernel.sched ~pid) pids
  in
  let busy0 =
    Array.init cores (fun c -> Core.Sched.core_busy_ns kernel.Core.Kernel.sched c)
  in
  Proto.Stage.run_for stage (Sim.Engine.ms (int_of_float (measure_s *. 1000.)));
  let until_ns = Core.Kernel.now kernel in
  let fps_sum =
    List.fold_left2
      (fun acc pid f0 ->
        acc
        +. (Measure.fps_by_counter kernel ~pid ~frames0:f0 ~from_ns ~until_ns)
             .Measure.fps)
      0.0 pids frames0
  in
  {
    cores;
    per_instance = fps_sum /. float_of_int instances;
    utilization = utilization kernel ~cores ~from_ns ~busy0 ~until_ns;
  }

(* Blockchain miner: kH/s with [threads] = cores. *)
let blockchain ~seed ~cores ~measure_s =
  let stage = boot_with_cores ~seed cores in
  let kernel = stage.Proto.Stage.kernel in
  (* difficulty high enough that mining continues through the window *)
  ignore
    (Proto.Stage.start stage "blockchain"
       [ "blockchain"; string_of_int cores; "34"; "1" ]);
  Proto.Stage.run_for stage (Sim.Engine.sec 1);
  let from_ns = Core.Kernel.now kernel in
  let busy0 =
    Array.init cores (fun c -> Core.Sched.core_busy_ns kernel.Core.Kernel.sched c)
  in
  Proto.Stage.run_for stage (Sim.Engine.ms (int_of_float (measure_s *. 1000.)));
  let until_ns = Core.Kernel.now kernel in
  let busy_total =
    Array.to_list (Array.init cores (fun c ->
        Int64.sub (Core.Sched.core_busy_ns kernel.Core.Kernel.sched c) busy0.(c)))
    |> List.fold_left Int64.add 0L
  in
  (* hash rate ∝ busy cycles / cycles-per-hash (2 sha256 compressions) *)
  let cycles = Int64.to_float busy_total (* 1 GHz: ns = cycles *) in
  let cycles_per_hash = float_of_int (2 * User.Sha256.cycles_per_block) in
  let hashes = cycles /. cycles_per_hash in
  {
    cores;
    per_instance = hashes /. Sim.Engine.to_sec (Int64.sub until_ns from_ns) /. 1000.0;
    utilization = utilization kernel ~cores ~from_ns ~busy0 ~until_ns;
  }

let run ?(measure_s = 4.0) ~seed () =
  let marios =
    List.map (fun cores -> mario_multi ~seed ~cores ~instances:8 ~measure_s)
      [ 1; 2; 3; 4 ]
  in
  let miners =
    List.map (fun cores -> blockchain ~seed ~cores ~measure_s) [ 1; 2; 3; 4 ]
  in
  (marios, miners)

let render (marios, miners) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "8 mario instances (FPS per instance):\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "  %d cores: %7.2f FPS/instance  (util %.1f%%)\n"
           p.cores p.per_instance (100.0 *. p.utilization)))
    marios;
  Buffer.add_string buf "blockchain miner (kH/s aggregate):\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "  %d cores: %7.1f kH/s          (util %.1f%%)\n"
           p.cores p.per_instance (100.0 *. p.utilization)))
    miners;
  Buffer.contents buf
