(** §6.3 memory consumption: boot Prototype 5, run each target app alone,
    report total OS memory (static kernel + ramdisk + framebuffer + pages
    + kmalloc) — the paper measures 21–42 MB of the Pi3's 1 GB. *)

type sample = { app : string; mb : float }

let measure_app ~prog ~argv =
  let stage = Proto.Stage.boot ~prototype:5 () in
  let kernel = stage.Proto.Stage.kernel in
  ignore (Proto.Stage.start stage prog argv);
  Proto.Stage.run_for stage (Sim.Engine.sec 3);
  {
    app = prog;
    mb = float_of_int (Core.Kernel.os_memory_bytes kernel) /. 1048576.0;
  }

let run () =
  [
    measure_app ~prog:"mario" ~argv:[ "mario"; "sdl"; "0" ];
    measure_app ~prog:"doom" ~argv:[ "doom"; "0" ];
    measure_app ~prog:"video" ~argv:[ "video"; "/d/videos/clip480.mv1"; "0" ];
  ]

let render samples =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "total OS memory while running each app alone:\n";
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "  %-8s %6.1f MB\n" s.app s.mb))
    samples;
  Buffer.contents buf
