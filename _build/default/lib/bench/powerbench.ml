(** Figure 12: device power and battery life.

    The USB power meter becomes the {!Hw.Power} model: measured core
    utilization and IO activity from a run feed the per-component draw
    (Pi3 board vs Game HAT), and battery life is one 18650's energy over
    the average power — the same quantities the figure reports. *)

type sample = {
  scenario : string;
  board_w : float;
  hat_w : float;
  total_w : float;
  battery_h : float;
}

let profile = Hw.Power.pi3_game_hat

let measure ~name ~setup ~measure_s =
  let stage = Proto.Stage.boot ~prototype:5 () in
  let kernel = stage.Proto.Stage.kernel in
  setup stage;
  Proto.Stage.run_for stage (Sim.Engine.sec 2) (* settle *);
  let cores = kernel.Core.Kernel.board.Hw.Board.platform.Hw.Board.num_cores in
  let busy0 =
    Array.init cores (fun c -> Core.Sched.core_busy_ns kernel.Core.Kernel.sched c)
  in
  let io0 =
    Array.init cores (fun c -> Core.Sched.core_io_ns kernel.Core.Kernel.sched c)
  in
  let from_ns = Core.Kernel.now kernel in
  Proto.Stage.run_for stage (Sim.Engine.ms (int_of_float (measure_s *. 1000.)));
  let window = Int64.to_float (Int64.sub (Core.Kernel.now kernel) from_ns) in
  let busy_cores = ref 0.0 and io_frac = ref 0.0 in
  for c = 0 to cores - 1 do
    busy_cores :=
      !busy_cores
      +. Int64.to_float
           (Int64.sub (Core.Sched.core_busy_ns kernel.Core.Kernel.sched c) busy0.(c))
         /. window;
    io_frac :=
      !io_frac
      +. Int64.to_float
           (Int64.sub (Core.Sched.core_io_ns kernel.Core.Kernel.sched c) io0.(c))
         /. window
  done;
  let board_w =
    Hw.Power.board_power profile ~busy_cores:!busy_cores ~io_fraction:!io_frac
  in
  let total_w =
    Hw.Power.total_power profile ~busy_cores:!busy_cores ~io_fraction:!io_frac
      ~hat:true
  in
  {
    scenario = name;
    board_w;
    hat_w = total_w -. board_w;
    total_w;
    battery_h = Hw.Power.battery_hours profile ~watts:total_w;
  }

let run () =
  [
    measure ~name:"shell idle" ~measure_s:5.0 ~setup:(fun stage ->
        ignore (Proto.Stage.start stage "sh" [ "sh" ]));
    measure ~name:"mario-sdl" ~measure_s:5.0 ~setup:(fun stage ->
        ignore (Proto.Stage.start stage "mario" [ "mario"; "sdl"; "0" ]));
    measure ~name:"DOOM" ~measure_s:5.0 ~setup:(fun stage ->
        ignore (Proto.Stage.start stage "doom" [ "doom"; "0" ]));
  ]

let render samples =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "  %-12s %8s %8s %8s %10s\n" "scenario" "board W" "HAT W"
       "total W" "battery h");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s %8.2f %8.2f %8.2f %10.2f\n" s.scenario
           s.board_w s.hat_w s.total_w s.battery_h))
    samples;
  Buffer.contents buf
