lib/bench/appbench.ml: Buffer Hw List Measure Osmodel Printf Proto String
