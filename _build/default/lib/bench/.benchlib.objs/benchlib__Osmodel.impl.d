lib/bench/osmodel.ml:
