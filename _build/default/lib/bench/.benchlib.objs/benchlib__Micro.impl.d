lib/bench/micro.ml: Array Bytes Core Hw Int64 Measure Proto Sim String User
