lib/bench/memuse.ml: Buffer Core List Printf Proto Sim
