lib/bench/ablation.ml: Buffer Core Float Hw List Measure Micro Option Printf Proto Sim User
