lib/bench/figures.ml: Buffer Core Float List Measure Micro Osmodel Printf String
