lib/bench/scale.ml: Array Buffer Core Hw Int64 List Measure Printf Proto Sim User
