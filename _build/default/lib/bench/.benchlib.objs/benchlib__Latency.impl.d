lib/bench/latency.ml: Appbench Buffer Core Float Hw Int64 List Measure Printf Proto Sim
