lib/bench/measure.ml: Core Hw Int64 List Proto Sim
