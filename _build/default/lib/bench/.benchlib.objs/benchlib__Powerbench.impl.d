lib/bench/powerbench.ml: Array Buffer Core Hw Int64 List Printf Proto Sim
