lib/bench/survey.ml: Array Buffer List Printf Sim
