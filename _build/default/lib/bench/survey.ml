(** Figure 13: the pedagogical survey, reproduced as a seeded respondent
    model (DESIGN.md substitution: we cannot survey 48 students; the
    figure is a distribution of Likert responses per principle, so we
    regenerate data with the distributions the paper describes — "most
    students found the interactive apps a strong motivator", "a majority
    (64%) opted for real devices", etc. — and summarize it the same way). *)

type principle = P1_apps | P2_demo | P3_incremental | P4_min_viable

let principles = [ P1_apps; P2_demo; P3_incremental; P4_min_viable ]

let name = function
  | P1_apps -> "P1 appealing apps"
  | P2_demo -> "P2 demonstrability"
  | P3_incremental -> "P3 incremental prototyping"
  | P4_min_viable -> "P4 minimum viable impl"

(* Response-probability vectors over Likert 1..5, encoding the paper's
   qualitative description of each principle's reception. *)
let distribution = function
  | P1_apps -> [| 0.00; 0.02; 0.08; 0.27; 0.63 |]
  | P2_demo -> [| 0.02; 0.06; 0.17; 0.35; 0.40 |] (* setup/debug friction noted *)
  | P3_incremental -> [| 0.00; 0.02; 0.10; 0.38; 0.50 |]
  | P4_min_viable -> [| 0.00; 0.04; 0.15; 0.41; 0.40 |]

let respondents = 48

type summary = {
  sprinciple : principle;
  counts : int array;  (** index 0 = Likert 1 *)
  mean : float;
  agree_pct : float;  (** responses >= 4 *)
}

let sample_one rng dist =
  let u = Sim.Rng.float rng 1.0 in
  let rec pick i acc =
    if i >= Array.length dist - 1 then i
    else begin
      let acc = acc +. dist.(i) in
      if u < acc then i else pick (i + 1) acc
    end
  in
  pick 0 0.0

let run ~seed () =
  let rng = Sim.Rng.create seed in
  List.map
    (fun p ->
      let dist = distribution p in
      let counts = Array.make 5 0 in
      for _ = 1 to respondents do
        let r = sample_one rng dist in
        counts.(r) <- counts.(r) + 1
      done;
      let total = float_of_int respondents in
      let mean =
        Array.to_list counts
        |> List.mapi (fun i c -> float_of_int ((i + 1) * c))
        |> List.fold_left ( +. ) 0.0
        |> fun s -> s /. total
      in
      let agree = float_of_int (counts.(3) + counts.(4)) /. total *. 100.0 in
      { sprinciple = p; counts; mean; agree_pct = agree })
    principles

let render summaries =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "  %-28s %3s %3s %3s %3s %3s  %5s %7s\n" "principle" "1"
       "2" "3" "4" "5" "mean" "agree%");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %-28s %3d %3d %3d %3d %3d  %5.2f %6.1f%%\n"
           (name s.sprinciple) s.counts.(0) s.counts.(1) s.counts.(2)
           s.counts.(3) s.counts.(4) s.mean s.agree_pct))
    summaries;
  Buffer.add_string buf (Printf.sprintf "  N=%d respondents (synthetic)\n" respondents);
  Buffer.contents buf
