(** Baseline operating-system models for Figure 9 and Table 4.

    We cannot run Linux, FreeBSD or the C xv6-armv8 port inside this
    container (DESIGN.md substitution table), so the baselines are
    parameterized models applied to the {e same workloads} our kernel runs.
    Each parameter encodes the causal mechanism the paper names for the
    observed difference, with the paper's own observations as calibration:

    - kernel-path latencies relative to VOS's measured ones ("comparable,
      within 0.5x–2x"; fork dominated by eager page copies, production
      OSes lazy, §6.2);
    - a libc compute factor (newlib vs musl vs glibc vs BSD libc) scaling
      md5sum/qsort ("likely due to differences in the standard C
      libraries");
    - file-path factors (VOS/xv6 polled SD drivers vs production DMA
      stacks);
    - a display-path model for Table 4 (production OSes render through an
      X server copy; VOS draws direct). *)

type t = {
  os_name : string;
  (* kernel path multipliers relative to measured VOS latency *)
  getpid_f : float;
  sbrk_f : float;
  ipc_f : float;
  (* fork: lazy-copy systems pay a ~constant cost instead of per-page *)
  fork_model : [ `Like_ours of float | `Lazy of float (* us, flat *) ];
  (* compute: libc quality *)
  libc_factor : float;
  (* file IO throughput multiplier (driver + cache stack quality) *)
  file_f : float;
  (* display path: production OSes render through an X server; the copy
     cost scales with the window area, plus a fixed per-frame server
     round-trip *)
  display_fixed_ms : float;
  display_ms_per_mpx : float;
  runs_mario_variants : bool;
      (** mario-noinput/proc need VOS-specific devfs (Table 4's '-') *)
}

let vos =
  {
    os_name = "ours";
    getpid_f = 1.0;
    sbrk_f = 1.0;
    ipc_f = 1.0;
    fork_model = `Like_ours 1.0;
    libc_factor = 1.0 (* newlib *);
    file_f = 1.0;
    display_fixed_ms = 0.0;
    display_ms_per_mpx = 0.0;
    runs_mario_variants = true;
  }

(* xv6-armv8 (Hongqin-Li rpi-os) with musl: comparable kernel paths
   (slightly slower on most per Fig. 9), slower compute (musl), slower SD
   driver ("ours appears to be more efficient"). *)
let xv6 =
  {
    os_name = "xv6-armv8";
    getpid_f = 1.18;
    sbrk_f = 1.25;
    ipc_f = 1.30;
    fork_model = `Like_ours 1.15;
    libc_factor = 1.45 (* musl's byte-wise paths on A53 *);
    file_f = 0.45;
    display_fixed_ms = 0.0;
    display_ms_per_mpx = 0.0;
    runs_mario_variants = false;
  }

(* Ubuntu 22.04 / glibc: fast syscalls, lazy fork, DMA storage stack, but
   an X server in the display path. *)
let linux =
  {
    os_name = "linux";
    getpid_f = 0.55;
    sbrk_f = 0.80;
    ipc_f = 0.85;
    fork_model = `Lazy 180.0;
    libc_factor = 0.90 (* glibc NEON string/mem paths *);
    file_f = 14.0;
    display_fixed_ms = 1.0 (* X server round-trip *);
    display_ms_per_mpx = 45.0 (* SHM put of the window area *);
    runs_mario_variants = false;
  }

(* FreeBSD 14.2: comparable syscall paths, lazy fork, good storage; a
   lighter X configuration in the paper's runs. *)
let freebsd =
  {
    os_name = "freebsd";
    getpid_f = 0.75;
    sbrk_f = 1.05;
    ipc_f = 1.10;
    fork_model = `Lazy 210.0;
    libc_factor = 1.00;
    file_f = 10.0;
    display_fixed_ms = 1.5;
    display_ms_per_mpx = 6.0;
    runs_mario_variants = false;
  }

let baselines = [ xv6; linux; freebsd ]
let all = vos :: baselines

(* Apply the model to a measured VOS latency (us). *)
let latency_us model ~bench ~ours_us ~fork_pages =
  match bench with
  | `Getpid -> ours_us *. model.getpid_f
  | `Sbrk -> ours_us *. model.sbrk_f
  | `Ipc -> ours_us *. model.ipc_f
  | `Fork -> (
      match model.fork_model with
      | `Like_ours f -> ours_us *. f
      | `Lazy flat_us -> flat_us +. (0.02 *. float_of_int fork_pages))
  | `Compute -> ours_us *. model.libc_factor /. vos.libc_factor
  | `File -> ours_us /. model.file_f

(* Apply the model to a measured VOS frame time (ms). The app-logic share
   is first deflated by [newlib_factor] — the bloat our newlib-class
   library adds, which the paper's latency analysis blames for mario-sdl's
   slowness and which glibc/BSD libc builds do not pay — then scaled by the
   baseline's libc factor; the X display path adds its window-scaled copy. *)
let fps model ~ours_fps ~applogic_share ~newlib_factor ~window_px =
  if ours_fps <= 0.0 then 0.0
  else begin
    let frame_ms = 1000.0 /. ours_fps in
    let app = frame_ms *. applogic_share
    and rest = frame_ms *. (1.0 -. applogic_share) in
    let display =
      model.display_fixed_ms
      +. (model.display_ms_per_mpx *. float_of_int window_px /. 1e6)
    in
    let frame_ms' =
      (app /. newlib_factor *. model.libc_factor /. vos.libc_factor)
      +. rest +. display
    in
    1000.0 /. frame_ms'
  end
