(** Drivers for Figure 8 (kernel microbenchmarks) and Figure 9 (cross-OS
    comparison), assembling {!Micro} measurements and {!Osmodel}
    baselines. *)

(* ---- Figure 8 ---- *)

type fig8 = {
  xv6fs_read_kbps : float;
  xv6fs_write_kbps : float;
  fat_read_kbps : float;
  fat_write_kbps : float;
  fat_range_read_kbps : float;  (** the §5.2 bypass; ablation pair *)
  fat_cached_read_kbps : float;  (** range bypass disabled *)
  getpid_us : float;
  getpid_sd : float;
  ipc_us : float;
  ipc_sd : float;
  boot_kernel_s : float;
  boot_shell_s : float;
}

let fig8 () =
  let kernel = Micro.fresh_kernel () in
  (* latency pair with run-to-run spread from distinct seeds *)
  let getpid_mean, getpid_sd =
    Measure.repeat ~runs:3 (fun ~seed ->
        Micro.getpid_us (Micro.fresh_kernel ~seed ()))
  in
  let ipc_mean, ipc_sd =
    Measure.repeat ~runs:3 (fun ~seed -> Micro.ipc_us (Micro.fresh_kernel ~seed ()))
  in
  (* filesystem throughput *)
  let mb = 1024 * 1024 in
  let xv6_w =
    Micro.fs_throughput_kbps kernel ~path:"/bench.dat" ~bytes:(200 * 1024)
      ~chunk:4096 ~direction:`Write
  in
  let xv6_r =
    Micro.fs_throughput_kbps kernel ~path:"/bench.dat" ~bytes:(200 * 1024)
      ~chunk:4096 ~direction:`Read
  in
  let fat_w =
    Micro.fs_throughput_kbps kernel ~path:"/d/bench.dat" ~bytes:mb ~chunk:4096
      ~direction:`Write
  in
  let fat_r =
    Micro.fs_throughput_kbps kernel ~path:"/d/bench.dat" ~bytes:mb ~chunk:4096
      ~direction:`Read
  in
  (* range read: large chunks exercise multi-cluster runs *)
  let fat_range =
    Micro.fs_throughput_kbps kernel ~path:"/d/bench.dat" ~bytes:mb
      ~chunk:(256 * 1024) ~direction:`Read
  in
  (* same access pattern with the bypass disabled (the ablation) *)
  let cached_kernel =
    Micro.fresh_kernel
      ~config:{ Core.Kconfig.full with Core.Kconfig.range_io_bypass = false }
      ()
  in
  Micro.prepare_file cached_kernel ~path:"/d/bench.dat" ~bytes:mb;
  let fat_cached =
    Micro.fs_throughput_kbps cached_kernel ~path:"/d/bench.dat" ~bytes:mb
      ~chunk:(256 * 1024) ~direction:`Read
  in
  let boot = Micro.boot_time ~seed:42L () in
  {
    xv6fs_read_kbps = xv6_r;
    xv6fs_write_kbps = xv6_w;
    fat_read_kbps = fat_r;
    fat_write_kbps = fat_w;
    fat_range_read_kbps = fat_range;
    fat_cached_read_kbps = fat_cached;
    getpid_us = getpid_mean;
    getpid_sd;
    ipc_us = ipc_mean;
    ipc_sd;
    boot_kernel_s = boot.Micro.to_kernel_s;
    boot_shell_s = boot.Micro.to_shell_s;
  }

let render_fig8 f =
  String.concat "\n"
    [
      "filesystem throughput:";
      Printf.sprintf "  xv6fs  read  %8.0f KB/s   write %8.0f KB/s"
        f.xv6fs_read_kbps f.xv6fs_write_kbps;
      Printf.sprintf "  FAT32  read  %8.0f KB/s   write %8.0f KB/s"
        f.fat_read_kbps f.fat_write_kbps;
      Printf.sprintf
        "  FAT32 range read: bypass %8.0f KB/s vs cached %8.0f KB/s (%.1fx)"
        f.fat_range_read_kbps f.fat_cached_read_kbps
        (f.fat_range_read_kbps /. Float.max 1.0 f.fat_cached_read_kbps);
      "latencies:";
      Printf.sprintf "  syscall (getpid)  %6.2f ± %.2f us" f.getpid_us f.getpid_sd;
      Printf.sprintf "  IPC one-way (pipe) %5.2f ± %.2f us" f.ipc_us f.ipc_sd;
      "boot:";
      Printf.sprintf "  power-on to kernel  %5.2f s" f.boot_kernel_s;
      Printf.sprintf "  power-on to shell   %5.2f s" f.boot_shell_s;
      "";
    ]

(* ---- Figure 9 ---- *)

type fig9_row = {
  bench_name : string;
  ours_us : float;
  by_os : (string * float) list;  (** modeled latency per baseline *)
}

let fig9 () =
  let heap_kb = 2048 in (* a newlib-linked process image: ~2 MB resident *)
  let kernel () = Micro.fresh_kernel () in
  let ours =
    [
      ("getpid", `Getpid, Micro.getpid_us (kernel ()));
      ("sbrk", `Sbrk, Micro.sbrk_us (kernel ()));
      ("fork", `Fork, Micro.fork_us ~heap_kb (kernel ()));
      ("ipc", `Ipc, Micro.ipc_us (kernel ()));
      ("md5sum 1MB", `Compute, Micro.md5_us ~kb:1024 ~libc_factor:1.0 (kernel ()));
      ("qsort 100k", `Compute, Micro.qsort_us ~n:100_000 ~libc_factor:1.0 (kernel ()));
    ]
  in
  (* file benches measured as latency of a 256 KB sequential read/write *)
  let file_us direction =
    let k = kernel () in
    let kbps =
      match direction with
      | `Write ->
          Micro.fs_throughput_kbps k ~path:"/d/f.dat" ~bytes:(256 * 1024)
            ~chunk:4096 ~direction:`Write
      | `Read ->
          Micro.prepare_file k ~path:"/d/f.dat" ~bytes:(256 * 1024);
          Micro.fs_throughput_kbps k ~path:"/d/f.dat" ~bytes:(256 * 1024)
            ~chunk:4096 ~direction:`Read
    in
    256.0 /. kbps *. 1e6
  in
  let ours =
    ours
    @ [ ("file read 256K", `File, file_us `Read);
        ("file write 256K", `File, file_us `Write) ]
  in
  List.map
    (fun (name, bench, ours_us) ->
      {
        bench_name = name;
        ours_us;
        by_os =
          List.map
            (fun model ->
              ( model.Osmodel.os_name,
                Osmodel.latency_us model ~bench ~ours_us
                  ~fork_pages:(Micro.fork_pages ~heap_kb) ))
            Osmodel.baselines;
      })
    ours

let render_fig9 rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "  %-16s %12s %12s %12s %12s   (normalized to ours)\n"
       "benchmark" "ours" "xv6-armv8" "linux" "freebsd");
  List.iter
    (fun row ->
      let get os = List.assoc os row.by_os in
      Buffer.add_string buf
        (Printf.sprintf
           "  %-16s %9.1fus %9.1fus %9.1fus %9.1fus   (1.00 %5.2f %5.2f %5.2f)\n"
           row.bench_name row.ours_us (get "xv6-armv8") (get "linux")
           (get "freebsd")
           (get "xv6-armv8" /. row.ours_us)
           (get "linux" /. row.ours_us)
           (get "freebsd" /. row.ours_us)))
    rows;
  Buffer.contents buf
