(** Ablations of the design choices DESIGN.md calls out — each runs the
    same workload with one mechanism toggled, so the effect flows through
    the mechanism rather than a constant:

    - §5.2 SIMD pixel paths: video playback with and without the NEON
      YUV/IDCT kernels (the paper's "nearly 3x, under 10 FPS to ~30").
    - §4.3 framebuffer mapping: mario with the framebuffer mapped cached
      (flush required) vs uncached ("significant FPS drop").
    - §4.5 WM dirty tracking: pixels composited for a mostly-static
      desktop with and without dirty-region skipping.
    - §5.2 range IO: covered in Figure 8 (bypass vs cached); reprinted
      here for a complete ablation table. *)

type row = {
  ab_name : string;
  with_mech : float;
  without : float;
  unit_ : string;
  paper_claim : string;
}

(* video 480p FPS, SIMD on/off *)
let simd_video () =
  let measure simd =
    let stage =
      Proto.Stage.boot ~prototype:5
        ~config_tweak:(fun c -> { c with Core.Kconfig.simd_pixel_ops = simd })
        ()
    in
    (Measure.app_fps stage ~prog:"video"
       ~argv:[ "video"; "/d/videos/clip480.mv1"; "0" ]
       ~warmup_s:2.0 ~measure_s:5.0)
      .Measure.fps
  in
  {
    ab_name = "SIMD pixel kernels (video 480p)";
    with_mech = measure true;
    without = measure false;
    unit_ = "FPS";
    paper_claim = "~3x: <10 FPS -> ~30 FPS (par 5.2)";
  }

(* mario-noinput FPS, fb cached vs uncached *)
let fb_mapping () =
  let measure mapping =
    let stage = Proto.Stage.boot ~prototype:5 () in
    let fb = Option.get stage.Proto.Stage.kernel.Core.Kernel.fb in
    Hw.Framebuffer.set_mapping fb mapping;
    (Measure.app_fps stage ~prog:"mario"
       ~argv:[ "mario"; "noinput"; "0" ]
       ~warmup_s:1.0 ~measure_s:4.0)
      .Measure.fps
  in
  {
    ab_name = "framebuffer mapped cached (mario)";
    with_mech = measure Hw.Framebuffer.Cached;
    without = measure Hw.Framebuffer.Uncached;
    unit_ = "FPS";
    paper_claim = "uncached mapping = significant FPS drop (par 4.3)";
  }

(* WM compositing work for a mostly-static desktop, dirty tracking on/off *)
let wm_dirty () =
  let measure track_dirty =
    let stage = Proto.Stage.boot ~prototype:5 ~track_dirty () in
    let kernel = stage.Proto.Stage.kernel in
    (* a static launcher-style window plus sysmon redrawing at 1 Hz *)
    ignore (Proto.Stage.start stage "sysmon" [ "sysmon"; "0" ]);
    ignore
      (Core.Kernel.spawn_user kernel ~name:"static" (fun () ->
           match User.Gfx.windowed ~width:300 ~height:200 ~x:100 ~y:100 () with
           | Error e -> e
           | Ok gfx ->
               User.Gfx.fill gfx 0x224466;
               User.Gfx.present gfx;
               ignore (User.Usys.sleep 1_000_000);
               0));
    Proto.Stage.run_for stage (Sim.Engine.sec 1);
    let wm = Option.get kernel.Core.Kernel.wm in
    let px0 = Core.Wm.pixels_composited wm in
    Proto.Stage.run_for stage (Sim.Engine.sec 5);
    float_of_int (Core.Wm.pixels_composited wm - px0) /. 5.0 /. 1e6
  in
  {
    ab_name = "WM dirty-region tracking (static desktop)";
    with_mech = measure true;
    without = measure false;
    unit_ = "Mpx composited/s";
    paper_claim = "WM redraws only dirty regions (par 4.5)";
  }

(* FAT32 range bypass, as in Figure 8, for the complete ablation table *)
let range_io () =
  let measure bypass =
    let kernel =
      Micro.fresh_kernel
        ~config:{ Core.Kconfig.full with Core.Kconfig.range_io_bypass = bypass }
        ()
    in
    Micro.prepare_file kernel ~path:"/d/abl.bin" ~bytes:(512 * 1024);
    Micro.fs_throughput_kbps kernel ~path:"/d/abl.bin" ~bytes:(512 * 1024)
      ~chunk:(128 * 1024) ~direction:`Read
  in
  {
    ab_name = "FAT32 range-IO cache bypass";
    with_mech = measure true;
    without = measure false;
    unit_ = "KB/s";
    paper_claim = "2-3x lower large-file latency (par 5.2)";
  }

(* multicore work stealing: 8 marios on 4 cores with and without steal is
   covered by Figure 10's 1-core column; here the per-core-queue design
   itself: multicore off = the P4 single-runqueue configuration *)
let multicore () =
  let measure on =
    let stage =
      Proto.Stage.boot ~prototype:5
        ~config_tweak:(fun c -> { c with Core.Kconfig.multicore = on })
        ()
    in
    let kernel = stage.Proto.Stage.kernel in
    let pids =
      List.init 4 (fun _ ->
          (Proto.Stage.start stage "mario" [ "mario"; "noinput"; "0" ])
            .Core.Task.pid)
    in
    Proto.Stage.run_for stage (Sim.Engine.sec 2);
    let from_ns = Core.Kernel.now kernel in
    let f0 =
      List.map (fun pid -> Core.Sched.frames_presented kernel.Core.Kernel.sched ~pid) pids
    in
    Proto.Stage.run_for stage (Sim.Engine.sec 4);
    let until_ns = Core.Kernel.now kernel in
    List.fold_left2
      (fun acc pid frames0 ->
        acc
        +. (Measure.fps_by_counter kernel ~pid ~frames0 ~from_ns ~until_ns)
             .Measure.fps)
      0.0 pids f0
  in
  {
    ab_name = "multicore scheduling (4 marios, total FPS)";
    with_mech = measure true;
    without = measure false;
    unit_ = "FPS";
    paper_claim = "4+ instances saturate one core (par 4.5)";
  }

let run () = [ simd_video (); fb_mapping (); wm_dirty (); range_io (); multicore () ]

let render rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "  %-42s %10s %10s %8s  %s\n" "mechanism" "with"
       "without" "ratio" "paper");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-42s %10.2f %10.2f %7.2fx  %s\n" r.ab_name
           r.with_mech r.without
           (r.with_mech /. Float.max 0.001 r.without)
           r.paper_claim))
    rows;
  Buffer.contents buf
