(** Table 4: app throughput (FPS) across platforms and OSes.

    VOS numbers are measured from the simulation (warm-up excluded, like
    the paper's 20 s warm-up protocol — scaled to the simulation's
    measurement windows). Linux/FreeBSD columns apply {!Osmodel} to the
    measured frame times; they do not run mario-noinput/proc (devfs/procfs
    interfaces specific to VOS), matching the '-' cells. *)

type app_case = {
  case_name : string;
  prog : string;
  argv : string list;
  warmup_s : float;
  measure_s : float;
  applogic_share : float;
      (** share of the frame spent in app logic+libs (Fig. 11), which the
          libc factor scales in the baseline models *)
  newlib_factor : float;
      (** how much our newlib-class library inflates this app's logic
          relative to a glibc/BSD build (1.0 = not newlib-bound) *)
  window_px : int;  (** pixels blitted per frame on a production OS *)
}

let cases =
  [
    { case_name = "DOOM"; prog = "doom"; argv = [ "doom"; "0" ]; warmup_s = 5.5;
      measure_s = 6.0; applogic_share = 0.80; newlib_factor = 1.0;
      window_px = 640 * 480 };
    { case_name = "video (480p)"; prog = "video";
      argv = [ "video"; "/d/videos/clip480.mv1"; "0" ]; warmup_s = 2.0;
      measure_s = 6.0; applogic_share = 0.85; newlib_factor = 1.0;
      window_px = 640 * 480 };
    { case_name = "video (720p)"; prog = "video";
      argv = [ "video"; "/d/videos/clip720.mv1"; "0" ]; warmup_s = 2.5;
      measure_s = 6.0; applogic_share = 0.88; newlib_factor = 1.0;
      window_px = 640 * 480 };
    { case_name = "mario-noinput"; prog = "mario";
      argv = [ "mario"; "noinput"; "0" ]; warmup_s = 1.0; measure_s = 5.0;
      applogic_share = 0.90; newlib_factor = 1.0; window_px = 256 * 240 };
    { case_name = "mario-proc"; prog = "mario"; argv = [ "mario"; "proc"; "0" ];
      warmup_s = 1.0; measure_s = 5.0; applogic_share = 0.85;
      newlib_factor = 1.0; window_px = 256 * 240 };
    { case_name = "mario-sdl"; prog = "mario"; argv = [ "mario"; "sdl"; "0" ];
      warmup_s = 1.0; measure_s = 5.0; applogic_share = 0.87;
      newlib_factor = 1.55 (* 13.6M vs 8.75M emu cycles: the newlib tax *);
      window_px = 256 * 240 };
  ]

let mario_variant case =
  String.equal case.case_name "mario-noinput"
  || String.equal case.case_name "mario-proc"

let measure_ours ~platform ~seed case =
  let stage = Proto.Stage.boot ~platform ~seed ~prototype:5 () in
  let sample =
    Measure.app_fps stage ~prog:case.prog ~argv:case.argv
      ~warmup_s:case.warmup_s ~measure_s:case.measure_s
  in
  sample.Measure.fps

type cell = Fps of float * float  (** mean, stddev *) | Not_run

type row = { row_name : string; cells : (string * cell) list }

let platforms = [ Hw.Board.pi3; Hw.Board.qemu_wsl; Hw.Board.qemu_vm ]

let run ?(runs = 2) () =
  List.map
    (fun case ->
      (* measure ours on each platform *)
      let ours =
        List.map
          (fun platform ->
            let mean, std =
              Measure.repeat ~runs (fun ~seed ->
                  measure_ours ~platform ~seed case)
            in
            (platform.Hw.Board.plat_name, mean, std))
          platforms
      in
      let pi3_fps, pi3_std =
        match ours with (_, m, s) :: _ -> (m, s) | [] -> (0.0, 0.0)
      in
      ignore pi3_std;
      (* production OS columns on pi3 only, like the paper *)
      let baseline model =
        if mario_variant case && not model.Osmodel.runs_mario_variants then
          Not_run
        else
          Fps
            ( Osmodel.fps model ~ours_fps:pi3_fps
                ~applogic_share:case.applogic_share
                ~newlib_factor:case.newlib_factor ~window_px:case.window_px,
              0.0 )
      in
      {
        row_name = case.case_name;
        cells =
          List.concat
            [
              (match ours with
              | (name, m, s) :: _ -> [ ("pi3/" ^ name, Fps (m, s)) ]
              | [] -> []);
              [ ("pi3/linux", baseline Osmodel.linux) ];
              [ ("pi3/freebsd", baseline Osmodel.freebsd) ];
              List.filter_map
                (fun (name, m, s) ->
                  if String.equal name "pi3" then None
                  else Some (name ^ "/ours", Fps (m, s)))
                (List.map (fun (n, m, s) -> (n, m, s)) ours);
            ];
      })
    cases

let render rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%-14s %-18s %-12s %-12s %-18s %-18s\n" "app" "pi3/ours"
       "pi3/linux" "pi3/freebsd" "qemu-wsl/ours" "qemu-vm/ours");
  List.iter
    (fun row ->
      Buffer.add_string buf (Printf.sprintf "%-14s" row.row_name);
      List.iter
        (fun (_, cell) ->
          match cell with
          | Fps (m, s) when s > 0.0 ->
              Buffer.add_string buf (Printf.sprintf " %8.2f±%-6.2f  " m s)
          | Fps (m, _) -> Buffer.add_string buf (Printf.sprintf " %8.2f      " m)
          | Not_run -> Buffer.add_string buf (Printf.sprintf " %8s      " "-"))
        row.cells;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
