(** Kernel microbenchmarks: the workloads behind Figure 8 (latencies,
    filesystem throughput, boot time) and Figure 9 (the cross-OS
    comparison applies {!Osmodel} to these measurements). *)

type result = { name : string; value : float; unit_ : string }

let fresh_kernel ?(platform = Hw.Board.pi3) ?(seed = 42L) ?(config = Core.Kconfig.full) () =
  Core.Kernel.boot
    {
      Core.Kernel.default_spec with
      sp_platform = platform;
      sp_config = config;
      sp_seed = seed;
      sp_fb = Some (640, 480);
    }

(* ---- syscall latency: getpid over [iters] calls ---- *)

let getpid_us ?(iters = 5000) kernel =
  let elapsed =
    Measure.run_task kernel ~name:"bench-getpid" (fun () ->
        for _ = 1 to iters do
          ignore (User.Usys.getpid ())
        done;
        0)
  in
  match elapsed with
  | Ok (_, ns) -> Sim.Engine.to_us ns /. float_of_int iters
  | Error e -> invalid_arg e

(* ---- sbrk latency: grow/shrink one page ---- *)

let sbrk_us ?(iters = 5000) kernel =
  match
    Measure.run_task kernel ~name:"bench-sbrk" (fun () ->
        for _ = 1 to iters / 2 do
          ignore (User.Usys.sbrk 4096);
          ignore (User.Usys.sbrk (-4096))
        done;
        0)
  with
  | Ok (_, ns) -> Sim.Engine.to_us ns /. float_of_int iters
  | Error e -> invalid_arg e

(* ---- fork+wait latency, with [heap_kb] resident to copy ---- *)

let fork_us ?(iters = 100) ~heap_kb kernel =
  match
    Measure.run_task kernel ~name:"bench-fork" (fun () ->
        ignore (User.Usys.sbrk (heap_kb * 1024));
        for _ = 1 to iters do
          let pid = User.Usys.fork (fun () -> 0) in
          assert (pid > 0);
          ignore (User.Usys.wait ())
        done;
        0)
  with
  | Ok (_, ns) ->
      (* each iteration includes the child's exit and the parent's wait;
         report the fork share like the paper's lat_fork does *)
      Sim.Engine.to_us ns /. float_of_int iters /. 2.0
  | Error e -> invalid_arg e

let fork_pages ~heap_kb = (heap_kb * 1024 / 4096) + 18 (* code + stack *)

(* ---- one-way pipe IPC: 1-byte ping-pong between two processes ---- *)

let ipc_us ?(iters = 5000) kernel =
  match
    Measure.run_task kernel ~name:"bench-ipc" (fun () ->
        match (User.Usys.pipe (), User.Usys.pipe ()) with
        | Ok (r1, w1), Ok (r2, w2) ->
            let child =
              User.Usys.fork (fun () ->
                  let live = ref true in
                  while !live do
                    match User.Usys.read r1 1 with
                    | Ok b when Bytes.length b = 1 ->
                        ignore (User.Usys.write w2 (Bytes.of_string "y"))
                    | Ok _ | Error _ -> live := false
                  done;
                  0)
            in
            for _ = 1 to iters do
              ignore (User.Usys.write w1 (Bytes.of_string "x"));
              ignore (User.Usys.read r2 1)
            done;
            ignore (User.Usys.kill child);
            ignore (User.Usys.wait ());
            0
        | _ -> 1)
  with
  | Ok (_, ns) ->
      (* round trip = 2 one-way messages *)
      Sim.Engine.to_us ns /. float_of_int iters /. 2.0
  | Error e -> invalid_arg e

(* ---- filesystem throughput (KB/s) ---- *)

let fs_throughput_kbps kernel ~path ~bytes ~chunk ~direction =
  let data = Bytes.make chunk 'v' in
  match
    Measure.run_task kernel ~name:"bench-fs" (fun () ->
        (match direction with
        | `Write ->
            let fd = User.Usys.open_ path (Core.Abi.o_create lor Core.Abi.o_wronly) in
            assert (fd >= 0);
            let written = ref 0 in
            while !written < bytes do
              let n = User.Usys.write fd data in
              assert (n > 0);
              written := !written + n
            done;
            ignore (User.Usys.close fd)
        | `Read ->
            let fd = User.Usys.open_ path Core.Abi.o_rdonly in
            assert (fd >= 0);
            let got = ref 0 in
            let eof = ref false in
            while (not !eof) && !got < bytes do
              match User.Usys.read fd chunk with
              | Ok b when Bytes.length b > 0 -> got := !got + Bytes.length b
              | Ok _ | Error _ -> eof := true
            done;
            ignore (User.Usys.close fd));
        0)
  with
  | Ok (_, ns) -> float_of_int bytes /. 1024.0 /. Sim.Engine.to_sec ns
  | Error e -> invalid_arg e

(* Prepare a file of [bytes] on the FAT partition or xv6fs for reads. *)
let prepare_file kernel ~path ~bytes =
  match
    Measure.run_task kernel ~name:"bench-prep" (fun () ->
        let fd = User.Usys.open_ path (Core.Abi.o_create lor Core.Abi.o_wronly) in
        assert (fd >= 0);
        let chunk = Bytes.make 65536 'p' in
        let written = ref 0 in
        while !written < bytes do
          let n = User.Usys.write fd (Bytes.sub chunk 0 (min 65536 (bytes - !written))) in
          assert (n > 0);
          written := !written + n
        done;
        ignore (User.Usys.close fd);
        0)
  with
  | Ok _ -> ()
  | Error e -> invalid_arg e

(* ---- compute: md5sum of [kb] and qsort of [n] ints ---- *)

let md5_us ~kb ~libc_factor kernel =
  match
    Measure.run_task kernel ~name:"bench-md5" (fun () ->
        let data = Bytes.make (kb * 1024) 'm' in
        let _, blocks = User.Md5.digest_with_blocks data in
        User.Usys.burn
          (int_of_float
             (float_of_int (blocks * User.Md5.cycles_per_block) *. libc_factor));
        0)
  with
  | Ok (_, ns) -> Sim.Engine.to_us ns
  | Error e -> invalid_arg e

let qsort_cycles_per_cmp = 22

let qsort_us ~n ~libc_factor kernel =
  match
    Measure.run_task kernel ~name:"bench-qsort" (fun () ->
        let rng = Sim.Rng.create 7L in
        let arr = Array.init n (fun _ -> Sim.Rng.int rng 1_000_000) in
        let comparisons = ref 0 in
        Array.sort
          (fun a b ->
            incr comparisons;
            compare a b)
          arr;
        assert (Array.length arr = n);
        User.Usys.burn
          (int_of_float
             (float_of_int (!comparisons * qsort_cycles_per_cmp) *. libc_factor));
        0)
  with
  | Ok (_, ns) -> Sim.Engine.to_us ns
  | Error e -> invalid_arg e

(* ---- boot time ---- *)

type boot_times = { to_kernel_s : float; to_shell_s : float }

let boot_time ?(platform = Hw.Board.pi3) ~seed () =
  let t = Proto.Stage.boot ~platform ~seed ~prototype:5 () in
  let kernel = t.Proto.Stage.kernel in
  let to_kernel = Sim.Engine.to_sec platform.Hw.Board.firmware_boot_ns in
  (* spawn the shell; "shell prompt" = the prompt string reaching the UART *)
  ignore (Proto.Stage.start t "sh" [ "sh" ]);
  let deadline = Int64.add (Core.Kernel.now kernel) (Sim.Engine.sec 30) in
  Measure.drive kernel ~deadline ~stop:(fun () ->
      let out = Core.Kernel.uart_output kernel in
      let n = String.length out and p = String.length "vos$ " in
      n >= p && String.equal (String.sub out (n - p) p) "vos$ ");
  { to_kernel_s = to_kernel; to_shell_s = Sim.Engine.to_sec (Core.Kernel.now kernel) }
