type profile = {
  board_idle_w : float;
  core_active_w : float;
  io_active_w : float;
  hat_w : float;
  battery_wh : float;
}

let pi3_game_hat =
  {
    board_idle_w = 1.88;
    core_active_w = 1.10;
    io_active_w = 0.30;
    hat_w = 1.15;
    battery_wh = 3.0 *. 3.7 (* one 18650: 3000 mAh at 3.7 V *);
  }

let board_power p ~busy_cores ~io_fraction =
  assert (busy_cores >= 0.0 && io_fraction >= 0.0);
  p.board_idle_w
  +. (p.core_active_w *. busy_cores)
  +. (p.io_active_w *. min 1.0 io_fraction)

let total_power p ~busy_cores ~io_fraction ~hat =
  board_power p ~busy_cores ~io_fraction +. if hat then p.hat_w else 0.0

let battery_hours p ~watts =
  assert (watts > 0.0);
  p.battery_wh /. watts
