type button = Up | Down | Left | Right | A | B | X | Y | Start | Select

type t = {
  intc : Intc.t;
  held : (button, unit) Hashtbl.t;
  mutable edges : (button * bool) list;  (* newest first *)
}

let create _engine intc = { intc; held = Hashtbl.create 16; edges = [] }

let latch t button pressed =
  t.edges <- (button, pressed) :: t.edges;
  Intc.raise_line t.intc Irq.Gpio_bank

let press t button =
  if not (Hashtbl.mem t.held button) then begin
    Hashtbl.replace t.held button ();
    latch t button true
  end

let release t button =
  if Hashtbl.mem t.held button then begin
    Hashtbl.remove t.held button;
    latch t button false
  end

let level t button = Hashtbl.mem t.held button

let take_edges t =
  let edges = List.rev t.edges in
  t.edges <- [];
  edges

let press_panic_button t = Intc.raise_line t.intc Irq.Fiq_button
