lib/hw/mailbox.ml: Framebuffer List
