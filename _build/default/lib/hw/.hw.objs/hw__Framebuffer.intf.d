lib/hw/framebuffer.mli: Sim
