lib/hw/power.ml:
