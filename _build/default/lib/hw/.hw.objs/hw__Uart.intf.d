lib/hw/uart.mli: Intc Sim
