lib/hw/irq.ml: Printf
