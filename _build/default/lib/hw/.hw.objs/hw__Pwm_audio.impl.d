lib/hw/pwm_audio.ml: Array Int64 Queue Sim
