lib/hw/mailbox.mli: Framebuffer Sim
