lib/hw/board.ml: Dma Float Gpio Int64 Intc Mailbox Pwm_audio Sd Sim Timer Uart Usb
