lib/hw/framebuffer.ml: Array Buffer Char Printf Sim String
