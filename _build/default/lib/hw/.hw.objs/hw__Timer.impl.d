lib/hw/timer.ml: Array Int64 Intc Irq Sim
