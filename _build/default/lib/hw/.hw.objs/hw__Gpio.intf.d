lib/hw/gpio.mli: Intc Sim
