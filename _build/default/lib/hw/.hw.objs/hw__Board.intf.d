lib/hw/board.mli: Dma Gpio Intc Mailbox Pwm_audio Sd Sim Timer Uart Usb
