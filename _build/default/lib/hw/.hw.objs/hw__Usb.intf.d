lib/hw/usb.mli: Bytes Intc Sim
