lib/hw/irq.mli:
