lib/hw/power.mli:
