lib/hw/dma.mli: Intc Sim
