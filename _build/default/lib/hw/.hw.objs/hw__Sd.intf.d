lib/hw/sd.mli: Bytes Sim
