lib/hw/dma.ml: Array Int64 Intc Irq Sim
