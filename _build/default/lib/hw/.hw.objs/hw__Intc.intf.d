lib/hw/intc.mli: Irq
