lib/hw/intc.ml: Array Irq List
