lib/hw/usb.ml: Bytes Int64 Intc Irq List Sim
