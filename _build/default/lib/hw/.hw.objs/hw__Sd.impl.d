lib/hw/sd.ml: Bytes Int64
