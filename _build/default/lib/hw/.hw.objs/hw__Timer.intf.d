lib/hw/timer.mli: Intc Sim
