lib/hw/uart.ml: Buffer Int64 Intc Irq Queue String
