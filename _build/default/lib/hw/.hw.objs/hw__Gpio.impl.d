lib/hw/gpio.ml: Hashtbl Intc Irq List
