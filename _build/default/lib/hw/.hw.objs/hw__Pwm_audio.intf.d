lib/hw/pwm_audio.mli: Sim
