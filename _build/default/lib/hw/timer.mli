(** Hardware timers: the SoC system timer and per-core ARM generic timers.

    The system timer is a free-running 1 MHz counter with one compare
    channel (the paper's Prototype 1 drives it for rendering ticks). Each
    core additionally has a generic timer programmed with a countdown value;
    when it expires it raises that core's private interrupt line — this is
    what drives scheduler ticks on every core in Prototype 5. *)

type t

val create : Sim.Engine.t -> Intc.t -> cores:int -> t

val counter_us : t -> int64
(** Free-running system-timer count (microseconds since power-on). *)

val set_sys_compare : t -> delta_us:int64 -> unit
(** Program the system timer to raise [Irq.Sys_timer] in [delta_us]
    microseconds. Reprogramming replaces any pending compare. *)

val clear_sys_compare : t -> unit

val arm_core_timer : t -> core:int -> delta_ns:int64 -> unit
(** One-shot countdown for [core]'s generic timer; raises
    [Irq.Core_timer core] when it expires. Re-arming replaces the pending
    shot (writing CNTP_TVAL). *)

val disarm_core_timer : t -> core:int -> unit

val core_timer_armed : t -> core:int -> bool
