type chan = { mutable busy : bool; mutable done_latch : bool }

type t = { engine : Sim.Engine.t; intc : Intc.t; chans : chan array }

let bus_bytes_per_sec = 400_000_000L
let setup_ns = 800L

let create engine intc ~channels =
  {
    engine;
    intc;
    chans = Array.init channels (fun _ -> { busy = false; done_latch = false });
  }

let channels t = Array.length t.chans
let busy t ~channel = t.chans.(channel).busy

let transfer_ns ~bytes_len =
  let data =
    Int64.div
      (Int64.mul (Int64.of_int bytes_len) 1_000_000_000L)
      bus_bytes_per_sec
  in
  Int64.add setup_ns data

let start t ~channel ~bytes_len ~on_complete =
  let ch = t.chans.(channel) in
  if ch.busy then invalid_arg "Dma.start: channel busy";
  ch.busy <- true;
  ignore
    (Sim.Engine.schedule_after t.engine (transfer_ns ~bytes_len) (fun () ->
         ch.busy <- false;
         ch.done_latch <- true;
         on_complete ();
         Intc.raise_line t.intc (Irq.Dma_channel channel)))

let done_latched t ~channel = t.chans.(channel).done_latch
let ack t ~channel = t.chans.(channel).done_latch <- false
