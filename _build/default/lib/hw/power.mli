(** Power and battery model (Figure 12 substitute for the USB power meter).

    Device power is decomposed the way the paper's figure is: the Pi3 board
    (idle floor plus per-core active power) and the Game HAT expansion
    (display backlight, audio amplifier, power IC). Battery life is the
    pack's energy divided by average power, for the HAT-compatible 18650
    cell (3000 mAh at 3.7 V). *)

type profile = {
  board_idle_w : float;  (** Pi3 at idle (WFI loop), peripherals clocked *)
  core_active_w : float;  (** additional draw per fully-busy core *)
  io_active_w : float;  (** additional draw under sustained IO (SD/USB) *)
  hat_w : float;  (** Game HAT: display + amplifier + power IC *)
  battery_wh : float;
}

val pi3_game_hat : profile
(** Calibrated to the paper: ~3 W at shell prompt, ~4 W under game load,
    3.7 h / 2.6 h battery life respectively. *)

val board_power : profile -> busy_cores:float -> io_fraction:float -> float
(** Pi3-board draw given the time-averaged number of busy cores
    (0.0–4.0) and the fraction of time spent in device IO. *)

val total_power : profile -> busy_cores:float -> io_fraction:float -> hat:bool -> float

val battery_hours : profile -> watts:float -> float
