(** PL011-style UART.

    Transmit is synchronous and polled, exactly as the paper argues for in
    §4.1: the writer busy-waits for the shift register, so each character
    costs wire time at the configured baud rate. The cost is returned to the
    caller (the kernel's console driver), which charges it to the running
    task. Receive is interrupt-driven: injected characters enter a FIFO and
    raise [Irq.Uart_rx].

    All transmitted bytes are captured in an output log so tests and
    examples can assert on console output. *)

type t

val create : Sim.Engine.t -> Intc.t -> baud:int -> t

val tx_cost_ns : t -> int64
(** Wire time for one character: 10 bit-times (8N1) at the baud rate. *)

val transmit : t -> char -> int64
(** Send one character; returns the polling cost in nanoseconds the caller
    must account for. *)

val output : t -> string
(** Everything transmitted since creation (or the last [clear_output]). *)

val clear_output : t -> unit

val inject : t -> char -> unit
(** Simulate a character arriving on the wire; raises [Irq.Uart_rx]. *)

val inject_string : t -> string -> unit

val read_char : t -> char option
(** Kernel-side: pop the RX FIFO. *)

val rx_available : t -> int
