let sector_bytes = 512

(* Polling-driver cost model, calibrated to the paper's Figure 8: a
   single-block polled transfer sustains ~300 KB/s; an 8+ block range
   amortizes the command overhead for a 2-3x win. *)
let cmd_overhead_ns = 1_100_000L
let per_sector_ns = 600_000L
let init_cost_ns = 180_000_000L (* card identify + switch to high speed *)

type t = {
  image : Bytes.t;
  mutable reads : int;
  mutable writes : int;
}

let create _engine ~size_mib =
  assert (size_mib > 0);
  {
    image = Bytes.make (size_mib * 1024 * 1024) '\000';
    reads = 0;
    writes = 0;
  }

let sectors t = Bytes.length t.image / sector_bytes

let cost_ns ~count =
  Int64.add cmd_overhead_ns (Int64.mul (Int64.of_int count) per_sector_ns)

let read t ~lba ~count =
  if count <= 0 then Error "sd: zero-length read"
  else if lba < 0 || lba > sectors t - count then Error "sd: read out of range"
  else begin
    t.reads <- t.reads + 1;
    let data = Bytes.sub t.image (lba * sector_bytes) (count * sector_bytes) in
    Ok (data, cost_ns ~count)
  end

let write t ~lba ~data =
  let len = Bytes.length data in
  if len = 0 || len mod sector_bytes <> 0 then
    Error "sd: write must be whole sectors"
  else begin
    let count = len / sector_bytes in
    if lba < 0 || lba > sectors t - count then Error "sd: write out of range"
    else begin
      t.writes <- t.writes + 1;
      Bytes.blit data 0 t.image (lba * sector_bytes) len;
      Ok (cost_ns ~count)
    end
  end

let load t ~lba data =
  Bytes.blit data 0 t.image (lba * sector_bytes) (Bytes.length data)

let read_count t = t.reads
let write_count t = t.writes
