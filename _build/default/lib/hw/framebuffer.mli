(** The GPU framebuffer, with CPU-cache effects.

    Pi3's framebuffer lives in GPU-reserved memory; the paper's §4.3
    "see CPU cache in action" experience hinges on two hardware facts this
    model reproduces:

    - Mapping the framebuffer {e uncached} makes every store go to memory
      (slow but always coherent).
    - Mapping it {e cached} makes stores cheap, but the display scans out of
      memory, so frames are invisible (stale) until the CPU cache is flushed
      for the framebuffer range. Unflushed lines leak to memory gradually as
      cache lines are evicted, which is why the paper's artifacts "gradually
      disappear".

    The model keeps two pixel planes: the CPU view (cache) and the memory
    plane the display reads. [flush] copies dirty rows; [evict_some] models
    background eviction. *)

type mapping = Uncached | Cached

type t

val create : width:int -> height:int -> t

val width : t -> int
val height : t -> int

val set_mapping : t -> mapping -> unit
val mapping : t -> mapping

val write_pixel : t -> x:int -> y:int -> int -> unit
(** Store one RGBA8888 pixel through the CPU view. Out-of-bounds writes are
    ignored (the real fb would wrap into GPU memory; apps must clip). *)

val read_pixel : t -> x:int -> y:int -> int
(** CPU-view load. *)

val write_row : t -> y:int -> int array -> unit
(** Store a full row; cheaper bulk path used by blit code. *)

val flush : t -> unit
(** Cache-clean the framebuffer range: publish all dirty rows to the
    display plane. No-op under [Uncached]. *)

val evict_some : t -> Sim.Rng.t -> fraction:float -> unit
(** Model background cache eviction: publish a random [fraction] of the
    dirty rows. *)

val display_pixel : t -> x:int -> y:int -> int
(** What the display scan-out reads at (x,y). *)

val stale_rows : t -> int
(** Number of rows whose CPU view differs from the display plane; the
    visible-artifact metric for the §4.3 experiment. *)

val frames_presented : t -> int
(** Count of [flush] calls that published at least one row. *)

val to_ppm : t -> string
(** Render the display plane as a binary PPM (P6), for dumping screenshots
    from examples. *)

val to_ascii : t -> cols:int -> rows:int -> string
(** Downsample the display plane to luminance ASCII art. *)
