(** PWM audio output (the 3.5 mm jack).

    The device consumes signed 16-bit mono samples from its hardware FIFO at
    the configured sample rate, draining in fixed-size chunks for simulation
    efficiency. If the FIFO runs dry mid-chunk the output glitches — the
    audible stutter the paper uses to motivate the producer-consumer
    pipeline (§4.4) — and the underrun counter increments.

    The DMA engine refills the FIFO; [push_samples] is the completion action
    a DMA transfer invokes. A rolling tail of emitted samples is retained so
    tests can assert on the waveform actually played. *)

type t

val create : Sim.Engine.t -> rate:int -> t

val rate : t -> int

val start : t -> unit
(** Begin consuming. Idempotent. *)

val stop : t -> unit

val fifo_capacity : int
val fifo_level : t -> int
val fifo_space : t -> int

val push_samples : t -> int array -> int
(** Append samples (clipped to capacity); returns how many were accepted. *)

val underruns : t -> int
(** Chunks that found too few samples. *)

val samples_played : t -> int

val recent_output : t -> int array
(** Up to the last 65536 samples emitted, oldest first; silence inserted
    during underruns appears as zeros. *)

val set_drain_listener : t -> (unit -> unit) -> unit
(** Called after each chunk drain — the "need more data" signal the audio
    driver uses to pump the pipeline (in real hardware this is the DMA DREQ
    pacing). *)
