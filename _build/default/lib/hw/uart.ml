type t = {
  intc : Intc.t;
  bit_ns : int64;
  log : Buffer.t;
  rx : char Queue.t;
}

let create _engine intc ~baud =
  assert (baud > 0);
  {
    intc;
    bit_ns = Int64.of_int (1_000_000_000 / baud);
    log = Buffer.create 4096;
    rx = Queue.create ();
  }

let tx_cost_ns t = Int64.mul 10L t.bit_ns

let transmit t c =
  Buffer.add_char t.log c;
  tx_cost_ns t

let output t = Buffer.contents t.log
let clear_output t = Buffer.clear t.log

let inject t c =
  Queue.add c t.rx;
  Intc.raise_line t.intc Irq.Uart_rx

let inject_string t s = String.iter (inject t) s

let read_char t = if Queue.is_empty t.rx then None else Some (Queue.pop t.rx)
let rx_available t = Queue.length t.rx
