(** The VideoCore property mailbox.

    On Pi3 the ARM cores talk to the GPU firmware through a mailbox carrying
    property tags; allocating the framebuffer is a multi-tag transaction
    (set physical size, set depth, allocate). The model implements the tags
    VOS uses. Each call costs a round-trip latency, returned to the caller
    for time accounting. *)

type tag =
  | Set_physical_size of int * int  (** width, height *)
  | Set_depth of int  (** bits per pixel; only 32 is accepted *)
  | Allocate_buffer
  | Get_pitch
  | Get_firmware_revision
  | Get_arm_memory  (** base, size of ARM-visible DRAM *)

type tag_result =
  | Size_set of int * int
  | Depth_set of int
  | Buffer of Framebuffer.t
  | Pitch of int  (** bytes per row *)
  | Firmware_revision of int
  | Arm_memory of int * int

type t

val create : Sim.Engine.t -> t

val round_trip_ns : int64
(** Latency of one mailbox transaction (the ARM side polls for the GPU's
    response). *)

val call : t -> tag list -> (tag_result list * int64, string) result
(** Execute a transaction; returns results in tag order plus the time cost.
    Fails if [Allocate_buffer] is requested before a physical size is set,
    or on an unsupported depth. *)

val framebuffer : t -> Framebuffer.t option
(** The currently allocated framebuffer, if any. *)
