type t = {
  engine : Sim.Engine.t;
  intc : Intc.t;
  mutable sys_compare : Sim.Engine.event_id option;
  core_shots : Sim.Engine.event_id option array;
}

let create engine intc ~cores =
  { engine; intc; sys_compare = None; core_shots = Array.make cores None }

let counter_us t = Int64.div (Sim.Engine.now t.engine) 1_000L

let clear_sys_compare t =
  match t.sys_compare with
  | None -> ()
  | Some id ->
      Sim.Engine.cancel t.engine id;
      t.sys_compare <- None

let set_sys_compare t ~delta_us =
  clear_sys_compare t;
  let id =
    Sim.Engine.schedule_after t.engine (Int64.mul delta_us 1_000L) (fun () ->
        t.sys_compare <- None;
        Intc.raise_line t.intc Irq.Sys_timer)
  in
  t.sys_compare <- Some id

let disarm_core_timer t ~core =
  match t.core_shots.(core) with
  | None -> ()
  | Some id ->
      Sim.Engine.cancel t.engine id;
      t.core_shots.(core) <- None

let arm_core_timer t ~core ~delta_ns =
  disarm_core_timer t ~core;
  let id =
    Sim.Engine.schedule_after t.engine delta_ns (fun () ->
        t.core_shots.(core) <- None;
        Intc.raise_line t.intc (Irq.Core_timer core))
  in
  t.core_shots.(core) <- Some id

let core_timer_armed t ~core = t.core_shots.(core) <> None
