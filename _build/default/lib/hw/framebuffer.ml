type mapping = Uncached | Cached

type t = {
  width : int;
  height : int;
  cache : int array;  (* CPU view *)
  plane : int array;  (* what the display reads *)
  dirty : bool array;  (* per-row dirtiness of the CPU view *)
  mutable mapping : mapping;
  mutable presented : int;
}

let create ~width ~height =
  assert (width > 0 && height > 0);
  {
    width;
    height;
    cache = Array.make (width * height) 0;
    plane = Array.make (width * height) 0;
    dirty = Array.make height false;
    mapping = Cached;
    presented = 0;
  }

let width t = t.width
let height t = t.height
let set_mapping t m = t.mapping <- m
let mapping t = t.mapping

let publish_row t y =
  let off = y * t.width in
  Array.blit t.cache off t.plane off t.width;
  t.dirty.(y) <- false

let write_pixel t ~x ~y px =
  if x >= 0 && x < t.width && y >= 0 && y < t.height then begin
    t.cache.((y * t.width) + x) <- px;
    match t.mapping with
    | Uncached -> publish_row t y
    | Cached -> t.dirty.(y) <- true
  end

let read_pixel t ~x ~y =
  if x >= 0 && x < t.width && y >= 0 && y < t.height then
    t.cache.((y * t.width) + x)
  else 0

let write_row t ~y row =
  if y >= 0 && y < t.height then begin
    let n = min t.width (Array.length row) in
    Array.blit row 0 t.cache (y * t.width) n;
    match t.mapping with
    | Uncached -> publish_row t y
    | Cached -> t.dirty.(y) <- true
  end

let flush t =
  match t.mapping with
  | Uncached -> ()
  | Cached ->
      let any = ref false in
      for y = 0 to t.height - 1 do
        if t.dirty.(y) then begin
          publish_row t y;
          any := true
        end
      done;
      if !any then t.presented <- t.presented + 1

let evict_some t rng ~fraction =
  for y = 0 to t.height - 1 do
    if t.dirty.(y) && Sim.Rng.bool rng fraction then publish_row t y
  done

let display_pixel t ~x ~y =
  if x >= 0 && x < t.width && y >= 0 && y < t.height then
    t.plane.((y * t.width) + x)
  else 0

let stale_rows t =
  let n = ref 0 in
  for y = 0 to t.height - 1 do
    if t.dirty.(y) then incr n
  done;
  !n

let frames_presented t = t.presented

let to_ppm t =
  let buf = Buffer.create ((t.width * t.height * 3) + 32) in
  Buffer.add_string buf (Printf.sprintf "P6\n%d %d\n255\n" t.width t.height);
  for y = 0 to t.height - 1 do
    for x = 0 to t.width - 1 do
      let px = t.plane.((y * t.width) + x) in
      Buffer.add_char buf (Char.chr ((px lsr 16) land 0xff));
      Buffer.add_char buf (Char.chr ((px lsr 8) land 0xff));
      Buffer.add_char buf (Char.chr (px land 0xff))
    done
  done;
  Buffer.contents buf

let luminance px =
  let r = (px lsr 16) land 0xff
  and g = (px lsr 8) land 0xff
  and b = px land 0xff in
  ((299 * r) + (587 * g) + (114 * b)) / 1000

let ascii_ramp = " .:-=+*#%@"

let to_ascii t ~cols ~rows =
  let buf = Buffer.create ((cols + 1) * rows) in
  for ry = 0 to rows - 1 do
    for cx = 0 to cols - 1 do
      let x = cx * t.width / cols and y = ry * t.height / rows in
      let lum = luminance t.plane.((y * t.width) + x) in
      let idx = lum * (String.length ascii_ramp - 1) / 255 in
      Buffer.add_char buf ascii_ramp.[idx]
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
