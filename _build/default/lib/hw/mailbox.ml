type tag =
  | Set_physical_size of int * int
  | Set_depth of int
  | Allocate_buffer
  | Get_pitch
  | Get_firmware_revision
  | Get_arm_memory

type tag_result =
  | Size_set of int * int
  | Depth_set of int
  | Buffer of Framebuffer.t
  | Pitch of int
  | Firmware_revision of int
  | Arm_memory of int * int

type t = {
  mutable size : (int * int) option;
  mutable depth : int;
  mutable fb : Framebuffer.t option;
}

let create _engine = { size = None; depth = 32; fb = None }

let round_trip_ns = 12_000L (* ~12 us: two mailbox polls + firmware work *)

let firmware_revision = 0x5f083e20
let arm_mem_base = 0
let arm_mem_size = 0x3b40_0000 (* 948 MB visible to ARM on a 1 GB Pi3 *)

let run_tag t tag =
  match tag with
  | Set_physical_size (w, h) ->
      if w <= 0 || h <= 0 || w > 4096 || h > 4096 then
        Error "mailbox: bad physical size"
      else begin
        t.size <- Some (w, h);
        Ok (Size_set (w, h))
      end
  | Set_depth d ->
      if d <> 32 then Error "mailbox: only 32bpp supported"
      else begin
        t.depth <- d;
        Ok (Depth_set d)
      end
  | Allocate_buffer -> (
      match t.size with
      | None -> Error "mailbox: allocate before size set"
      | Some (w, h) ->
          let fb =
            match t.fb with
            | Some fb when Framebuffer.width fb = w && Framebuffer.height fb = h
              ->
                fb
            | Some _ | None -> Framebuffer.create ~width:w ~height:h
          in
          t.fb <- Some fb;
          Ok (Buffer fb))
  | Get_pitch -> (
      match t.size with
      | None -> Error "mailbox: pitch before size set"
      | Some (w, _) -> Ok (Pitch (w * (t.depth / 8))))
  | Get_firmware_revision -> Ok (Firmware_revision firmware_revision)
  | Get_arm_memory -> Ok (Arm_memory (arm_mem_base, arm_mem_size))

let call t tags =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tag :: rest -> (
        match run_tag t tag with
        | Ok r -> go (r :: acc) rest
        | Error e -> Error e)
  in
  match go [] tags with
  | Ok results -> Ok (results, round_trip_ns)
  | Error e -> Error e

let framebuffer t = t.fb
