(** GPIO bank, as used by the Game HAT buttons and the panic button.

    Buttons are active-low lines. Pressing or releasing a button latches an
    edge event and raises [Irq.Gpio_bank]; the kernel's driver reads and
    clears the latched edges. One designated line is wired to FIQ instead,
    implementing the paper's panic button (§5.1). *)

type t

type button = Up | Down | Left | Right | A | B | X | Y | Start | Select

val create : Sim.Engine.t -> Intc.t -> t

val press : t -> button -> unit
val release : t -> button -> unit

val level : t -> button -> bool
(** [true] while held down. *)

val take_edges : t -> (button * bool) list
(** Kernel-side: latched (button, pressed) edges in arrival order; clears
    the latch. *)

val press_panic_button : t -> unit
(** Raise the FIQ panic line, regardless of IRQ masking. *)
