let fifo_capacity = 8192
let chunk = 512
let tail_capacity = 65536

type t = {
  engine : Sim.Engine.t;
  rate : int;
  fifo : int Queue.t;
  mutable running : bool;
  mutable underruns : int;
  mutable played : int;
  tail : int array;
  mutable tail_len : int;
  mutable tail_pos : int;  (* ring cursor once full *)
  mutable listener : (unit -> unit) option;
}

let create engine ~rate =
  assert (rate > 0);
  {
    engine;
    rate;
    fifo = Queue.create ();
    running = false;
    underruns = 0;
    played = 0;
    tail = Array.make tail_capacity 0;
    tail_len = 0;
    tail_pos = 0;
    listener = None;
  }

let rate t = t.rate

let emit t sample =
  t.played <- t.played + 1;
  if t.tail_len < tail_capacity then begin
    t.tail.(t.tail_len) <- sample;
    t.tail_len <- t.tail_len + 1
  end
  else begin
    t.tail.(t.tail_pos) <- sample;
    t.tail_pos <- (t.tail_pos + 1) mod tail_capacity
  end

let chunk_period_ns t =
  Int64.div (Int64.mul (Int64.of_int chunk) 1_000_000_000L) (Int64.of_int t.rate)

let rec drain t () =
  if t.running then begin
    let available = Queue.length t.fifo in
    if available < chunk then t.underruns <- t.underruns + 1;
    for _ = 1 to chunk do
      let s = if Queue.is_empty t.fifo then 0 else Queue.pop t.fifo in
      emit t s
    done;
    (match t.listener with Some f -> f () | None -> ());
    ignore (Sim.Engine.schedule_after t.engine (chunk_period_ns t) (drain t))
  end

let start t =
  if not t.running then begin
    t.running <- true;
    ignore (Sim.Engine.schedule_after t.engine (chunk_period_ns t) (drain t))
  end

let stop t = t.running <- false

let fifo_level t = Queue.length t.fifo
let fifo_space t = fifo_capacity - Queue.length t.fifo

let push_samples t samples =
  let space = fifo_space t in
  let n = min space (Array.length samples) in
  for i = 0 to n - 1 do
    Queue.add samples.(i) t.fifo
  done;
  n

let underruns t = t.underruns
let samples_played t = t.played

let recent_output t =
  if t.tail_len < tail_capacity then Array.sub t.tail 0 t.tail_len
  else
    Array.init tail_capacity (fun i ->
        t.tail.((t.tail_pos + i) mod tail_capacity))

let set_drain_listener t f = t.listener <- Some f
