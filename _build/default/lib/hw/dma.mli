(** DMA engine.

    Channels move data asynchronously at a fixed bus bandwidth; when a
    transfer completes the channel latches "done", raises its interrupt
    line, and invokes the completion action (delivering the payload to the
    destination device). The kernel's drivers ack the channel from their
    interrupt handler and program the next transfer — the producer-consumer
    pipeline of §4.4. *)

type t

val create : Sim.Engine.t -> Intc.t -> channels:int -> t

val channels : t -> int

val busy : t -> channel:int -> bool

val start : t -> channel:int -> bytes_len:int -> on_complete:(unit -> unit) -> unit
(** Begin a transfer of [bytes_len] bytes. Raises [Invalid_argument] if the
    channel is busy. On completion: [on_complete ()] runs, the channel's
    done-latch sets, and [Irq.Dma_channel channel] is raised. *)

val done_latched : t -> channel:int -> bool

val ack : t -> channel:int -> unit
(** Clear the done-latch (the driver's interrupt acknowledgement). *)

val transfer_ns : bytes_len:int -> int64
(** Time to move [bytes_len] bytes at the modeled bus bandwidth
    (400 MB/s, the Pi3 AXI bus's practical DMA rate). *)
