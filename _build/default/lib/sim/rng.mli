(** Deterministic pseudo-random number generation for the simulator.

    All stochastic behaviour in the simulation (measurement jitter, workload
    randomization, synthetic survey sampling) draws from this generator so
    that every experiment is reproducible bit-for-bit from its seed. The
    implementation is splitmix64, which has a full 64-bit period per stream
    and cheap stream splitting. *)

type t
(** A generator stream. Mutable; not shared between unrelated subsystems —
    use {!split} to derive independent streams. *)

val create : int64 -> t
(** [create seed] makes a fresh stream from [seed]. *)

val split : t -> t
(** [split t] derives an independent stream; [t] advances. *)

val next : t -> int64
(** [next t] returns the next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** [gaussian t ~mu ~sigma] samples a normal distribution (Box–Muller). *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)
