(** The discrete-event simulation core.

    The engine owns the virtual clock (nanoseconds) and an event queue.
    Everything in the machine model — timer interrupts, DMA completions, SD
    transfers, scheduler decisions — is an event: a callback that fires at a
    virtual instant. Running the engine pops events in time order and
    invokes them; callbacks may schedule further events.

    Nothing in the simulation reads wall-clock time; the virtual clock is the
    only notion of time, which makes every experiment reproducible. *)

type t

type event_id
(** Handle for cancelling a scheduled event. *)

val create : unit -> t
(** A fresh engine with the clock at 0 and an empty queue. *)

val now : t -> int64
(** Current virtual time in nanoseconds. *)

val schedule_at : t -> int64 -> (unit -> unit) -> event_id
(** [schedule_at t time f] fires [f] when the clock reaches [time]. [time]
    must not be in the past. Events at equal instants fire in scheduling
    order. *)

val schedule_after : t -> int64 -> (unit -> unit) -> event_id
(** [schedule_after t delta f] fires [f] [delta] nanoseconds from now. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event. Cancelling an already-fired or already-cancelled
    event is a no-op. *)

val pending : t -> int
(** Number of live (non-cancelled) events in the queue. *)

val step : t -> bool
(** Fire the next event. Returns [false] if the queue was empty. *)

val run : t -> ?until:int64 -> ?max_events:int -> unit -> unit
(** Fire events until the queue is empty, the clock would pass [until], or
    [max_events] have fired. When stopping at [until], the clock is advanced
    exactly to [until]. *)

val advance_to : t -> int64 -> unit
(** Force the clock forward to [time] without firing events; used by device
    models for intra-event latency accounting. Raises [Invalid_argument] if
    [time] is in the past or would skip over a pending event. *)

(** {1 Time unit helpers} *)

val ns : int -> int64
val us : int -> int64
val ms : int -> int64
val sec : int -> int64
val to_us : int64 -> float
val to_ms : int64 -> float
val to_sec : int64 -> float
