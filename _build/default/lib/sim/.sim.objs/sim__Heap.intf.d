lib/sim/heap.mli:
