lib/sim/engine.mli:
