lib/sim/rng.mli:
