lib/sim/stats.mli:
