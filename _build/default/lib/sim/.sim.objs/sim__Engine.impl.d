lib/sim/engine.ml: Hashtbl Heap Int64
