type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable sum : float;
  mutable samples : float array;
  mutable sorted : bool;
}

let create () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    sum = 0.0;
    samples = Array.make 16 0.0;
    sorted = true;
  }

let add t x =
  if t.n = Array.length t.samples then begin
    let bigger = Array.make (2 * t.n) 0.0 in
    Array.blit t.samples 0 bigger 0 t.n;
    t.samples <- bigger
  end;
  t.samples.(t.n) <- x;
  t.n <- t.n + 1;
  t.sorted <- false;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
let min_value t = if t.n = 0 then 0.0 else t.min_v
let max_value t = if t.n = 0 then 0.0 else t.max_v
let total t = t.sum

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.n in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.n;
    t.sorted <- true
  end

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    ensure_sorted t;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) - 1 in
    let rank = max 0 (min (t.n - 1) rank) in
    t.samples.(rank)
  end

let merge a b =
  let t = create () in
  for i = 0 to a.n - 1 do
    add t a.samples.(i)
  done;
  for i = 0 to b.n - 1 do
    add t b.samples.(i)
  done;
  t
