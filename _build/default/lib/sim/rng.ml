type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next t)

let int t bound =
  assert (bound > 0);
  let raw = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  raw mod bound

let float t bound =
  (* 53 bits of mantissa from the top of the raw value. *)
  let raw = Int64.shift_right_logical (next t) 11 in
  Int64.to_float raw /. 9007199254740992.0 *. bound

let gaussian t ~mu ~sigma =
  let u1 = max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let bool t p = float t 1.0 < p
