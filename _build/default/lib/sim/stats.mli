(** Online sample statistics.

    Accumulates samples (latencies, throughputs, frame times) and reports
    summary statistics. Mean and variance use Welford's algorithm; quantiles
    keep the raw samples and sort on demand, which is fine at the sample
    counts the benchmarks use (thousands). *)

type t

val create : unit -> t

val add : t -> float -> unit
(** [add t x] records one sample. *)

val count : t -> int

val mean : t -> float
(** Mean of the samples; 0 if empty. *)

val stddev : t -> float
(** Sample standard deviation; 0 with fewer than two samples. *)

val min_value : t -> float

val max_value : t -> float

val total : t -> float
(** Sum of all samples. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]], by nearest-rank on the sorted
    samples; 0 if empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator holding the samples of both. *)
