(* vos — boot and drive the simulated OS from the command line.

     vos run --prototype 5 --app doom --seconds 8 --ascii
     vos run --app mario --args "mario sdl 0" --screenshot shot.ppm
     vos shell --cmd "ls /" --cmd "uptime"
     vos matrix
     vos sloc
     vos boot --platform qemu-wsl
*)

open Cmdliner

let platform_of_name = function
  | "pi3" -> Hw.Board.pi3
  | "qemu-wsl" -> Hw.Board.qemu_wsl
  | "qemu-vm" -> Hw.Board.qemu_vm
  | name -> invalid_arg (Printf.sprintf "unknown platform %s" name)

let platform_arg =
  Arg.(value & opt string "pi3" & info [ "platform" ] ~doc:"pi3, qemu-wsl or qemu-vm")

let prototype_arg =
  Arg.(value & opt int 5 & info [ "prototype"; "p" ] ~doc:"prototype stage 1-5")

(* ---- run ---- *)

let run_cmd =
  let app_arg = Arg.(value & opt string "donut" & info [ "app" ] ~doc:"program name") in
  let argv_arg =
    Arg.(value & opt string "" & info [ "args" ] ~doc:"argv as one string")
  in
  let seconds = Arg.(value & opt int 5 & info [ "seconds"; "s" ] ~doc:"virtual seconds") in
  let screenshot =
    Arg.(value & opt (some string) None & info [ "screenshot" ] ~doc:"write a PPM")
  in
  let ascii = Arg.(value & flag & info [ "ascii" ] ~doc:"print the screen as ASCII") in
  let run platform prototype app args seconds screenshot ascii =
    let stage = Proto.Stage.boot ~platform:(platform_of_name platform) ~prototype () in
    let kernel = stage.Proto.Stage.kernel in
    Printf.printf "booted prototype %d on %s at t=%.2fs\n%!" prototype platform
      (Sim.Engine.to_sec (Core.Kernel.now kernel));
    let argv =
      if String.equal args "" then [ app ]
      else String.split_on_char ' ' args |> List.filter (fun s -> s <> "")
    in
    let task = Proto.Stage.start stage app argv in
    Proto.Stage.run_for stage (Sim.Engine.sec seconds);
    Printf.printf "after %d virtual seconds: %s, %d frames presented\n" seconds
      (Core.Task.state_name task)
      (Core.Sched.frames_presented kernel.Core.Kernel.sched ~pid:task.Core.Task.pid);
    let console = Proto.Stage.uart stage in
    if String.length console > 0 then Printf.printf "console:\n%s\n" console;
    (match kernel.Core.Kernel.fb with
    | Some fb ->
        if ascii then print_string (Hw.Framebuffer.to_ascii fb ~cols:78 ~rows:24);
        (match screenshot with
        | Some path ->
            let out = open_out_bin path in
            output_string out (Hw.Framebuffer.to_ppm fb);
            close_out out;
            Printf.printf "screenshot written to %s\n" path
        | None -> ())
    | None -> ())
  in
  Cmd.v (Cmd.info "run" ~doc:"boot a prototype and run one app")
    Term.(
      const run $ platform_arg $ prototype_arg $ app_arg $ argv_arg $ seconds
      $ screenshot $ ascii)

(* ---- shell ---- *)

let shell_cmd =
  let cmds =
    Arg.(value & opt_all string [] & info [ "cmd"; "c" ] ~doc:"command to type")
  in
  let run platform cmds =
    let stage = Proto.Stage.boot ~platform:(platform_of_name platform) ~prototype:5 () in
    let kernel = stage.Proto.Stage.kernel in
    ignore (Proto.Stage.start stage "sh" [ "sh" ]);
    Proto.Stage.run_for stage (Sim.Engine.sec 1);
    List.iter
      (fun cmd ->
        Hw.Uart.inject_string kernel.Core.Kernel.board.Hw.Board.uart (cmd ^ "\n");
        Proto.Stage.run_for stage (Sim.Engine.sec 3))
      cmds;
    print_string (Proto.Stage.uart stage)
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"boot prototype 5 and type commands at the shell")
    Term.(const run $ platform_arg $ cmds)

(* ---- matrix / sloc / boot ---- *)

let matrix_cmd =
  let run () =
    print_string (Proto.Matrix.render ());
    match Proto.Matrix.validate () with
    | [] -> print_endline "validation: OK"
    | vs ->
        List.iter (fun v -> print_endline (Proto.Matrix.describe_violation v)) vs;
        exit 1
  in
  Cmd.v (Cmd.info "matrix" ~doc:"print and validate the Table 1 feature matrix")
    Term.(const run $ const ())

let sloc_cmd =
  let run () = print_string (Proto.Sloc.render (Proto.Sloc.analyze ())) in
  Cmd.v (Cmd.info "sloc" ~doc:"source-line analysis (Figure 7)")
    Term.(const run $ const ())

let boot_cmd =
  let run platform =
    let stage = Proto.Stage.boot ~platform:(platform_of_name platform) ~prototype:5 () in
    let kernel = stage.Proto.Stage.kernel in
    Printf.printf "platform:         %s\n" platform;
    Printf.printf "kernel ready:     %.2f s after power-on\n"
      (Sim.Engine.to_sec kernel.Core.Kernel.boot_ready_ns);
    ignore (Proto.Stage.start stage "sh" [ "sh" ]);
    Proto.Stage.run_for stage (Sim.Engine.sec 2);
    Printf.printf "shell prompt:     %.2f s after power-on\n"
      (Sim.Engine.to_sec (Core.Kernel.now kernel));
    Printf.printf "OS memory in use: %.1f MB\n"
      (float_of_int (Core.Kernel.os_memory_bytes kernel) /. 1048576.0)
  in
  Cmd.v (Cmd.info "boot" ~doc:"boot and report timings") Term.(const run $ platform_arg)

let () =
  let doc = "VOS: an instructional OS on a simulated Raspberry Pi 3" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "vos" ~doc)
          [ run_cmd; shell_cmd; matrix_cmd; sloc_cmd; boot_cmd ]))
