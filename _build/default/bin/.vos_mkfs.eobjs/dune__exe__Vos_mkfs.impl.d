bin/vos_mkfs.ml: Array Bytes Filename Fs List Printf Result String Sys
