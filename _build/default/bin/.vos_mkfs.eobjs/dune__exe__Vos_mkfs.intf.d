bin/vos_mkfs.mli:
