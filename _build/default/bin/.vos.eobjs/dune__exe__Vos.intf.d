bin/vos.mli:
