bin/vos.ml: Arg Cmd Cmdliner Core Hw List Printf Proto Sim String Term
