(* Desktop: the Prototype 5 experience of Figure 1(m) — several windows
   under the window manager, sysmon floating translucent on top, keys
   routed to the focused app, ctrl+tab switching windows.

     dune exec examples/desktop.exe
*)

let () =
  let stage = Proto.Stage.boot ~prototype:5 () in
  let kernel = stage.Proto.Stage.kernel in
  let board = kernel.Core.Kernel.board in
  print_endline "booting the desktop: mario (windowed), launcher, sysmon...";

  ignore (Proto.Stage.start stage "mario" [ "mario"; "sdl"; "0" ]);
  Proto.Stage.run_for stage (Sim.Engine.ms 500);
  ignore (Proto.Stage.start stage "launcher" [ "launcher"; "0" ]);
  Proto.Stage.run_for stage (Sim.Engine.ms 500);
  ignore (Proto.Stage.start stage "sysmon" [ "sysmon"; "0" ]);
  Proto.Stage.run_for stage (Sim.Engine.sec 2);

  let wm = Option.get kernel.Core.Kernel.wm in
  Printf.printf "windows open: %d, compositions so far: %d (skipped %d idle rounds)\n"
    (Core.Wm.surface_count wm) (Core.Wm.composites wm)
    (Core.Wm.skipped_rounds wm);

  (* play mario with the keyboard: run right and jump *)
  print_endline "pressing right+space on the USB keyboard (focused window)...";
  Core.Wm.rotate_focus wm (* cycle to a window *);
  Hw.Usb.key_down board.Hw.Board.usb 0x4f;
  Proto.Stage.run_for stage (Sim.Engine.ms 800);
  Hw.Usb.key_down board.Hw.Board.usb 0x2c;
  Proto.Stage.run_for stage (Sim.Engine.ms 300);
  Hw.Usb.key_up board.Hw.Board.usb 0x2c;
  Hw.Usb.key_up board.Hw.Board.usb 0x4f;
  Proto.Stage.run_for stage (Sim.Engine.sec 1);

  (* ctrl+tab: the WM switches focus *)
  let focus_before = wm.Core.Wm.focus in
  Hw.Usb.key_down board.Hw.Board.usb ~modifiers:0x01 0x2b;
  Proto.Stage.run_for stage (Sim.Engine.ms 100);
  Hw.Usb.key_up board.Hw.Board.usb 0x2b;
  Proto.Stage.run_for stage (Sim.Engine.ms 100);
  Printf.printf "ctrl+tab: focus %s -> %s\n"
    (match focus_before with Some id -> string_of_int id | None -> "-")
    (match wm.Core.Wm.focus with Some id -> string_of_int id | None -> "-");

  (* let everything run a while, then report *)
  Proto.Stage.run_for stage (Sim.Engine.sec 2);
  print_endline "\nscreen (ASCII):";
  let fb = Option.get kernel.Core.Kernel.fb in
  print_string (Hw.Framebuffer.to_ascii fb ~cols:78 ~rows:24);

  Printf.printf "\n/proc/tasks view:\n";
  List.iter
    (fun task ->
      Printf.printf "  %2d %-12s %-14s cpu=%.1fms\n" task.Core.Task.pid
        task.Core.Task.name (Core.Task.state_name task)
        (Int64.to_float task.Core.Task.cpu_ns /. 1e6))
    (Core.Sched.all_tasks kernel.Core.Kernel.sched);

  let out = open_out_bin "desktop.ppm" in
  output_string out (Hw.Framebuffer.to_ppm fb);
  close_out out;
  print_endline "screenshot written to desktop.ppm"
