(* Miner farm: the blockchain miner scaling across cores (Figure 10's
   multithreaded workload) — watch per-core utilization and hash rate as
   the thread count grows.

     dune exec examples/miner_farm.exe
*)

let mine_with cores =
  let platform = { Hw.Board.pi3 with Hw.Board.num_cores = cores } in
  let stage =
    Proto.Stage.boot ~platform
      ~config_tweak:(fun c -> { c with Core.Kconfig.multicore = cores > 1 })
      ~prototype:5 ()
  in
  let kernel = stage.Proto.Stage.kernel in
  let task =
    Proto.Stage.start stage "blockchain"
      [ "blockchain"; string_of_int cores; "13"; "3" ]
  in
  Proto.Stage.run_for stage (Sim.Engine.sec 60);
  let busy =
    List.init cores (fun c ->
        Sim.Engine.to_sec (Core.Sched.core_busy_ns kernel.Core.Kernel.sched c))
  in
  Printf.printf "%d core(s): %-8s  per-core busy: %s\n" cores
    (Core.Task.state_name task)
    (String.concat " " (List.map (fun b -> Printf.sprintf "%.1fs" b) busy));
  (* the miner prints its own summary to the console *)
  let out = Proto.Stage.uart stage in
  List.iter
    (fun line ->
      if String.length line > 0 then Printf.printf "    %s\n" line)
    (String.split_on_char '\n' out)

let () =
  print_endline "mining 3 blocks at difficulty 13, scaling 1 -> 4 cores:";
  List.iter mine_with [ 1; 2; 4 ]
