examples/miner_farm.ml: Core Hw List Printf Proto Sim String
