examples/journey.ml: Core Hw Int64 List Option Printf Proto Sim String User
