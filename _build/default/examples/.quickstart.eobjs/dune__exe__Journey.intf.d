examples/journey.mli:
