examples/media_night.mli:
