examples/quickstart.ml: Core Hw Option Printf Proto Sim
