examples/media_night.ml: Array Core Hw Int64 Option Printf Proto Sim User
