examples/miner_farm.mli:
