examples/quickstart.mli:
