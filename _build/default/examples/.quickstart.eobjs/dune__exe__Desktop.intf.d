examples/desktop.mli:
