(* Media night: the Prototype 5 media stack — play a VOGG track with its
   album cover, then an MV1 video clip, watching the producer-consumer
   audio pipeline (§4.4) and the decode path (§5.2) at work.

     dune exec examples/media_night.exe
*)

let () =
  let stage = Proto.Stage.boot ~prototype:5 () in
  let kernel = stage.Proto.Stage.kernel in
  let pwm = kernel.Core.Kernel.board.Hw.Board.pwm in

  print_endline "== music: /d/music/track1.vogg (ADPCM over /dev/sb via DMA) ==";
  let music =
    Proto.Stage.start stage "music"
      [ "music"; "/d/music/track1.vogg"; "/d/music/cover1.pngl" ]
  in
  Proto.Stage.run_for stage (Sim.Engine.sec 4);
  Printf.printf "  %d samples played, fifo level %d, underruns %d\n"
    (Hw.Pwm_audio.samples_played pwm)
    (Hw.Pwm_audio.fifo_level pwm)
    (Hw.Pwm_audio.underruns pwm);
  let wave = Hw.Pwm_audio.recent_output pwm in
  let n = Array.length wave in
  print_string "  waveform tail: ";
  for i = 0 to 59 do
    let s = wave.(n - 60 + i) in
    print_char
      (if s > 6000 then '#' else if s > 0 then '+' else if s > -6000 then '-' else '_')
  done;
  print_newline ();
  ignore (Core.Kernel.spawn_user kernel ~name:"killer" (fun () ->
      ignore (User.Usys.kill music.Core.Task.pid);
      0));
  Proto.Stage.run_for stage (Sim.Engine.ms 100);

  print_endline "\n== video: /d/videos/clip480.mv1 (DCT decode + NEON YUV) ==";
  let video =
    Proto.Stage.start stage "video" [ "video"; "/d/videos/clip480.mv1"; "90" ]
  in
  let t0 = Core.Kernel.now kernel in
  let f0 =
    Core.Sched.frames_presented kernel.Core.Kernel.sched ~pid:video.Core.Task.pid
  in
  Proto.Stage.run_for stage (Sim.Engine.sec 4);
  let frames =
    Core.Sched.frames_presented kernel.Core.Kernel.sched ~pid:video.Core.Task.pid
    - f0
  in
  Printf.printf "  %d frames in %.1f s of virtual time (target 30 FPS native)\n"
    frames
    (Sim.Engine.to_sec (Int64.sub (Core.Kernel.now kernel) t0));

  let fb = Option.get kernel.Core.Kernel.fb in
  print_endline "\n  a video frame, in ASCII:";
  print_string (Hw.Framebuffer.to_ascii fb ~cols:72 ~rows:20);

  Printf.printf "\nOS memory in use: %.1f MB (paper: 21-42 MB)\n"
    (float_of_int (Core.Kernel.os_memory_bytes kernel) /. 1048576.0)
