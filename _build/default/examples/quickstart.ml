(* Quickstart: boot the full OS (Prototype 5), run the donut, and watch it
   spin — the paper's Figure 1(b) moment, in ASCII.

     dune exec examples/quickstart.exe
*)

let () =
  print_endline "booting VOS (prototype 5) on a simulated Raspberry Pi 3...";
  let stage = Proto.Stage.boot ~prototype:5 () in
  let kernel = stage.Proto.Stage.kernel in
  Printf.printf "  boot complete at t=%.2f s (firmware + SD + USB init)\n"
    (Sim.Engine.to_sec (Core.Kernel.now kernel));

  (* say hello through the console *)
  ignore (Proto.Stage.start stage "hello" [ "hello"; "quickstart" ]);
  Proto.Stage.run_for stage (Sim.Engine.ms 200);

  (* run the donut for a second of virtual time and show a frame *)
  let donut = Proto.Stage.start stage "donut" [ "donut"; "pixels"; "0" ] in
  Proto.Stage.run_for stage (Sim.Engine.sec 1);
  let fb = Option.get kernel.Core.Kernel.fb in
  print_endline "\nthe framebuffer, downsampled to ASCII:";
  print_string (Hw.Framebuffer.to_ascii fb ~cols:78 ~rows:24);

  let frames =
    Core.Sched.frames_presented kernel.Core.Kernel.sched
      ~pid:donut.Core.Task.pid
  in
  Printf.printf "\ndonut rendered %d frames (%.0f FPS)\n" frames
    (float_of_int frames /. 1.0);

  (* console output so far *)
  Printf.printf "\nUART console:\n%s\n" (Proto.Stage.uart stage);

  (* save a screenshot *)
  let out = open_out_bin "quickstart.ppm" in
  output_string out (Hw.Framebuffer.to_ppm fb);
  close_out out;
  print_endline "screenshot written to quickstart.ppm"
