(* The journey: walk all five prototypes in order, running each stage's
   target apps — the paper's whole arc (Table 1) in one program.

     dune exec examples/journey.exe
*)

let banner k title = Printf.printf "\n===== Prototype %d: %s =====\n%!" k title

let () =
  (* ---- Prototype 1: baremetal IO — one donut in the timer loop ---- *)
  banner 1 "Baremetal IO";
  let p1 = Proto.Stage.boot ~prototype:1 () in
  ignore (Proto.Stage.kernel_donut p1 ~pace:`Busy_wait ~frames:20 ~speed:0.07);
  Proto.Stage.run_for p1 (Sim.Engine.sec 2);
  let fb1 = Option.get p1.Proto.Stage.kernel.Core.Kernel.fb in
  print_string (Hw.Framebuffer.to_ascii fb1 ~cols:60 ~rows:16);
  print_endline "(a donut, rendered by the kernel with no scheduler at all)";

  (* ---- Prototype 2: multitasking — donuts at their own pace ---- *)
  banner 2 "Multitasking";
  let p2 = Proto.Stage.boot ~prototype:2 () in
  ignore (Proto.Stage.kernel_donut p2 ~pace:(`Sleep 16) ~frames:60 ~speed:0.07);
  ignore (Proto.Stage.kernel_donut p2 ~pace:(`Sleep 48) ~frames:20 ~speed:0.15);
  Proto.Stage.run_for p2 (Sim.Engine.sec 2);
  Printf.printf "two donut tasks, sleeping at 16ms and 48ms, shared one core:\n";
  List.iter
    (fun t ->
      Printf.printf "  pid %d %-10s cpu=%.1fms (%s)\n" t.Core.Task.pid
        t.Core.Task.name
        (Int64.to_float t.Core.Task.cpu_ns /. 1e6)
        (Core.Task.state_name t))
    (Core.Sched.all_tasks p2.Proto.Stage.kernel.Core.Kernel.sched);

  (* ---- Prototype 3: user/kernel — mario in its own address space ---- *)
  banner 3 "User vs. Kernel";
  let p3 = Proto.Stage.boot ~prototype:3 () in
  let mario = Proto.Stage.start p3 "mario" [ "mario"; "noinput"; "0" ] in
  Proto.Stage.run_for p3 (Sim.Engine.sec 2);
  Printf.printf
    "mario (no input) runs at EL0 in its own address space: %d frames\n"
    (Core.Sched.frames_presented p3.Proto.Stage.kernel.Core.Kernel.sched
       ~pid:mario.Core.Task.pid);
  (* demonstrate the stage's limits: no files yet *)
  ignore
    (Core.Kernel.spawn_user p3.Proto.Stage.kernel ~name:"probe" (fun () ->
         let rc = User.Usys.open_ "/anything" Core.Abi.o_rdonly in
         User.Usys.printf "open() at P3 returns %d (ENOSYS is -38)\n" rc;
         0));
  Proto.Stage.run_for p3 (Sim.Engine.ms 200);
  print_string (Proto.Stage.uart p3);

  (* ---- Prototype 4: files — shell, ROMs, sound ---- *)
  banner 4 "Files";
  let p4 = Proto.Stage.boot ~prototype:4 () in
  ignore (Proto.Stage.start p4 "sh" [ "sh"; "/scripts/demo.sh" ]);
  ignore (Proto.Stage.start p4 "buzzer" [ "buzzer"; "440"; "300" ]);
  Proto.Stage.run_for p4 (Sim.Engine.sec 4);
  Printf.printf "the shell ran a script from the ramdisk:\n";
  List.iter
    (fun l -> if l <> "" then Printf.printf "  | %s\n" l)
    (String.split_on_char '\n' (Proto.Stage.uart p4));
  Printf.printf "and the buzzer played %d samples through DMA+PWM\n"
    (Hw.Pwm_audio.samples_played p4.Proto.Stage.kernel.Core.Kernel.board.Hw.Board.pwm);

  (* ---- Prototype 5: desktop — DOOM ---- *)
  banner 5 "Desktop (boot to DOOM)";
  let p5 = Proto.Stage.boot ~prototype:5 () in
  let doom = Proto.Stage.start p5 "doom" [ "doom"; "0" ] in
  Proto.Stage.run_for p5 (Sim.Engine.sec 7) (* WAD load + play *);
  let fb5 = Option.get p5.Proto.Stage.kernel.Core.Kernel.fb in
  print_string (Hw.Framebuffer.to_ascii fb5 ~cols:78 ~rows:22);
  Printf.printf "DOOM: %d frames rendered after loading its WAD from FAT32\n"
    (Core.Sched.frames_presented p5.Proto.Stage.kernel.Core.Kernel.sched
       ~pid:doom.Core.Task.pid);
  print_endline "\nfrom boot to DOOM: the journey is complete."
