(** Tests for the user library: the allocator, every codec, the crypto
    kernels (against published vectors) and the threading primitives that
    need a live kernel. *)

open Tharness
open User

(* ---- umalloc (needs a kernel for sbrk) ---- *)

let alloc_basic () =
  in_kernel (fun _ ->
      let m = Umalloc.create () in
      let a = Option.get (Umalloc.malloc m 100) in
      let b = Option.get (Umalloc.malloc m 200) in
      check_bool "distinct" true (a <> b);
      check_bool "no overlap" true (abs (a - b) >= 100);
      check_int "live count" 2 (Umalloc.live_count m);
      Umalloc.free m a;
      Umalloc.free m b;
      check_int "all freed" 0 (Umalloc.live_count m);
      check_int "live bytes zero" 0 (Umalloc.live_bytes m))

let alloc_reuses_freed () =
  in_kernel (fun _ ->
      let m = Umalloc.create () in
      let a = Option.get (Umalloc.malloc m 1000) in
      Umalloc.free m a;
      let b = Option.get (Umalloc.malloc m 1000) in
      check_int "first-fit reuses the hole" a b)

let alloc_coalesces () =
  in_kernel (fun _ ->
      let m = Umalloc.create () in
      let blocks = List.init 8 (fun _ -> Option.get (Umalloc.malloc m 2000)) in
      List.iter (Umalloc.free m) blocks;
      (* after freeing everything adjacent, a single large block must fit
         without growing the heap *)
      let heap0 = Umalloc.heap_bytes m in
      ignore (Option.get (Umalloc.malloc m 15_000));
      check_int "no sbrk needed after coalescing" heap0 (Umalloc.heap_bytes m))

let alloc_free_detects_bad_address () =
  in_kernel (fun _ ->
      let m = Umalloc.create () in
      ignore (Umalloc.malloc m 64);
      Alcotest.check_raises "bad free"
        (Invalid_argument "umalloc: free of unallocated address") (fun () ->
          Umalloc.free m 0x31337))

let alloc_random_no_overlap =
  qcheck ~count:20 "umalloc never hands out overlapping extents"
    QCheck.(list_of_size (Gen.int_range 1 60) (int_range 1 4096))
    (fun sizes ->
      in_kernel (fun _ ->
          let m = Umalloc.create () in
          let live = ref [] in
          let ok = ref true in
          List.iteri
            (fun i size ->
              match Umalloc.malloc m size with
              | None -> ok := false
              | Some addr ->
                  List.iter
                    (fun (a, s) ->
                      if addr < a + s && a < addr + size then ok := false)
                    !live;
                  live := (addr, size) :: !live;
                  (* occasionally free one to churn the free list *)
                  if i mod 3 = 2 then begin
                    match !live with
                    | (a, _) :: rest ->
                        Umalloc.free m a;
                        live := rest
                    | [] -> ()
                  end)
            sizes;
          !ok))

let suite_alloc =
  ( "user.umalloc",
    [
      quick "basic alloc/free" alloc_basic;
      quick "reuses freed blocks" alloc_reuses_freed;
      quick "coalesces neighbours" alloc_coalesces;
      quick "detects bad free" alloc_free_detects_bad_address;
      alloc_random_no_overlap;
    ] )

(* ---- codecs ---- *)

let bytes_gen = QCheck.(map Bytes.of_string (string_of_size (Gen.int_bound 2000)))

let deflate_stored_roundtrip =
  qcheck "deflate stored blocks roundtrip" bytes_gen (fun data ->
      Bytes.equal data (Deflate.inflate (Deflate.compress_stored data)))

let deflate_fixed_roundtrip =
  qcheck "deflate fixed-huffman roundtrip" bytes_gen (fun data ->
      Bytes.equal data (Deflate.inflate (Deflate.compress_fixed data)))

let deflate_fixed_code_lengths () =
  (* fixed Huffman: bytes < 144 cost 8 bits (no expansion), bytes >= 144
     cost 9 bits (slight expansion) - verify both regimes *)
  let low = Bytes.make 4000 'a' in
  let packed_low = Deflate.compress_fixed low in
  check_bool "low bytes stay ~1:1" true
    (Bytes.length packed_low <= Bytes.length low + 8);
  let high = Bytes.make 4000 '\xf0' in
  let packed_high = Deflate.compress_fixed high in
  check_in_range "high bytes cost 9/8"
    (float_of_int (Bytes.length high))
    (float_of_int (Bytes.length high * 9 / 8 + 8))
    (float_of_int (Bytes.length packed_high))

let deflate_rejects_garbage () =
  (match Deflate.inflate (Bytes.of_string "\007garbage-stream") with
  | exception Deflate.Corrupt _ -> ()
  | exception _ -> ()
  | _ -> Alcotest.fail "garbage accepted");
  (* stored-length check corruption *)
  let good = Deflate.compress_stored (Bytes.of_string "payload") in
  Bytes.set_uint8 good 2 (Bytes.get_uint8 good 2 lxor 0xff);
  match Deflate.inflate good with
  | exception Deflate.Corrupt _ -> ()
  | _ -> Alcotest.fail "corrupted length accepted"

let deflate_backref_stream () =
  (* hand-built fixed-huffman stream with an LZ77 match:
     "abcabc" as literals a b c + match(len 3, dist 3) *)
  let w_buf = Buffer.create 8 in
  let byte = ref 0 and bit = ref 0 in
  let push b =
    byte := !byte lor (b lsl !bit);
    incr bit;
    if !bit = 8 then begin
      Buffer.add_char w_buf (Char.chr !byte);
      byte := 0;
      bit := 0
    end
  in
  let push_lsb v n = for i = 0 to n - 1 do push ((v lsr i) land 1) done in
  let push_code code n = for i = n - 1 downto 0 do push ((code lsr i) land 1) done in
  push_lsb 1 1 (* final *);
  push_lsb 1 2 (* fixed *);
  let lit c = push_code (0x30 + Char.code c) 8 in
  lit 'a'; lit 'b'; lit 'c';
  (* length 3 = code 257 -> 7-bit code 1; distance 3 = code 2, 5 bits *)
  push_code 1 7;
  push_code 2 5;
  (* end of block: code 256 -> 7-bit zero *)
  push_code 0 7;
  if !bit > 0 then Buffer.add_char w_buf (Char.chr !byte);
  let out = Deflate.inflate (Buffer.to_bytes w_buf) in
  check_string "lz77 match resolved" "abcabc" (Bytes.to_string out)

let lzw_roundtrip =
  qcheck "lzw roundtrip" bytes_gen (fun data ->
      Bytes.equal data (Lzw.decode ~min_code_size:8 (Lzw.encode ~min_code_size:8 data)))

let lzw_compresses_repetitive () =
  let data = Bytes.make 4096 'r' in
  let packed = Lzw.encode ~min_code_size:8 data in
  check_bool "repetitive input shrinks a lot" true
    (Bytes.length packed < Bytes.length data / 8)

let lzw_small_alphabet =
  qcheck "lzw with 4-bit codes"
    QCheck.(list_of_size (Gen.int_bound 500) (int_bound 15))
    (fun symbols ->
      let data = Bytes.init (List.length symbols) (fun i -> Char.chr (List.nth symbols i)) in
      Bytes.equal data (Lzw.decode ~min_code_size:4 (Lzw.encode ~min_code_size:4 data)))

let adpcm_tracks_signal () =
  (* IMA ADPCM is lossy; a smooth sine must come back close *)
  let n = 8000 in
  let original =
    Array.init n (fun i -> int_of_float (12000.0 *. sin (float_of_int i /. 20.0)))
  in
  let decoded = Adpcm.decode (Adpcm.encode original) ~samples:n in
  let err = ref 0.0 and power = ref 0.0 in
  for i = 0 to n - 1 do
    let d = float_of_int (original.(i) - decoded.(i)) in
    err := !err +. (d *. d);
    power := !power +. (float_of_int original.(i) *. float_of_int original.(i))
  done;
  let snr_db = 10.0 *. log10 (!power /. Float.max 1.0 !err) in
  check_bool "SNR above 20dB" true (snr_db > 20.0)

let adpcm_container_roundtrip () =
  let samples = Array.init 1000 (fun i -> (i * 37 mod 4000) - 2000) in
  let packed = Adpcm.pack ~rate:44100 samples in
  let rate, n, _payload = check_ok "unpack" (Adpcm.unpack packed) in
  check_int "rate" 44100 rate;
  check_int "count" 1000 n;
  ignore (check_err "bad magic" (Adpcm.unpack (Bytes.of_string "WAVE1234567890123456")))

let yuv_roundtrip_tolerance =
  qcheck "yuv->rgb->yuv stays close"
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (r, g, b) ->
      let y, u, v = Yuv.rgb_to_yuv ((r lsl 16) lor (g lsl 8) lor b) in
      let px = Yuv.yuv_to_rgb ~y ~u ~v in
      let r' = (px lsr 16) land 0xff
      and g' = (px lsr 8) land 0xff
      and b' = px land 0xff in
      abs (r - r') <= 8 && abs (g - g') <= 8 && abs (b - b') <= 8)

let yuv_simd_same_pixels () =
  let width = 32 and height = 16 in
  let y = Array.init (width * height) (fun i -> 16 + (i mod 220)) in
  let u = Array.init (width / 2 * (height / 2)) (fun i -> 100 + (i mod 56)) in
  let v = Array.init (width / 2 * (height / 2)) (fun i -> 90 + (i mod 70)) in
  let a = Array.make (width * height) 0 and b = Array.make (width * height) 0 in
  let cost_scalar = Yuv.convert_420 ~width ~height ~y_plane:y ~u_plane:u ~v_plane:v ~out:a ~simd:false in
  let cost_simd = Yuv.convert_420 ~width ~height ~y_plane:y ~u_plane:u ~v_plane:v ~out:b ~simd:true in
  check_bool "identical pixels" true (a = b);
  check_bool "simd much cheaper" true (cost_simd * 4 < cost_scalar)

let bmp_roundtrip =
  qcheck ~count:25 "bmp roundtrip"
    QCheck.(pair (int_range 1 40) (int_range 1 30))
    (fun (w, h) ->
      let img =
        {
          Bmp.width = w;
          height = h;
          pixels = Array.init (w * h) (fun i -> (i * 997) land 0xffffff);
        }
      in
      match Bmp.decode (Bmp.encode img) with
      | Ok back -> back.Bmp.pixels = img.Bmp.pixels
      | Error _ -> false)

let bmp_rejects_bad () =
  ignore (check_err "short" (Bmp.decode (Bytes.make 10 'x')));
  ignore (check_err "magic" (Bmp.decode (Bytes.make 60 'x')))

let pnglite_roundtrip =
  qcheck ~count:20 "pnglite roundtrip (both compressors)"
    QCheck.(triple (int_range 1 32) (int_range 1 24) bool)
    (fun (w, h, fixed) ->
      let img =
        {
          Pnglite.width = w;
          height = h;
          pixels = Array.init (w * h) (fun i -> (i * 131071) land 0xffffff);
        }
      in
      let compressor =
        if fixed then Deflate.compress_fixed else Deflate.compress_stored
      in
      match Pnglite.decode (Pnglite.encode ~compressor img) with
      | Ok back -> back.Pnglite.pixels = img.Pnglite.pixels
      | Error _ -> false)

let pnglite_checksum_detects_corruption () =
  let img =
    { Pnglite.width = 8; height = 8; pixels = Array.init 64 (fun i -> i * 999) }
  in
  let packed = Pnglite.encode img in
  (* flip a payload byte past the header *)
  Bytes.set_uint8 packed 24 (Bytes.get_uint8 packed 24 lxor 0x40);
  match Pnglite.decode packed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corruption not detected"

let giflite_roundtrip () =
  let width = 24 and height = 18 in
  let frames =
    Array.init 3 (fun f ->
        Array.init (width * height) (fun i -> (i + (f * 37)) land 0xff))
  in
  let palette = Array.init 256 (fun i -> i * 65793) in
  let gif = { Giflite.width; height; palette; frames; delay_ms = 100 } in
  let back = check_ok "decode" (Giflite.decode (Giflite.encode gif)) in
  check_int "frames" 3 (Array.length back.Giflite.frames);
  check_bool "indices preserved" true (back.Giflite.frames = frames);
  let out = Array.make (width * height) 0 in
  Giflite.render back 1 out;
  check_int "render uses palette" palette.(frames.(1).(0)) out.(0)

let mv1_psnr () =
  let width = 64 and height = 48 in
  let frame =
    {
      Mv1.y_plane =
        Array.init (width * height) (fun i ->
            let x = i mod width and y = i / width in
            (* smooth ramp: DCT-friendly, like natural video *)
            16 + (x * 2) + y);
      u_plane = Array.make (width / 2 * (height / 2)) 110;
      v_plane = Array.make (width / 2 * (height / 2)) 140;
    }
  in
  let payload = Mv1.encode_frame ~width ~height ~quality:Mv1.quality frame in
  let back = Mv1.decode_frame ~width ~height ~quality:Mv1.quality payload in
  (* DCT at quality 50 on smooth content: high PSNR expected *)
  let mse = ref 0.0 in
  Array.iteri
    (fun i v ->
      let d = float_of_int (v - back.Mv1.y_plane.(i)) in
      mse := !mse +. (d *. d))
    frame.Mv1.y_plane;
  let mse = !mse /. float_of_int (width * height) in
  let psnr = 10.0 *. log10 (255.0 *. 255.0 /. Float.max 0.001 mse) in
  check_bool "psnr above 30dB" true (psnr > 30.0);
  check_bool "compressed smaller than raw" true
    (Bytes.length payload < width * height)

let mv1_container_roundtrip () =
  let width = 32 and height = 32 in
  let mk t =
    {
      Mv1.y_plane = Array.init (width * height) (fun i -> (i + t) land 0xff);
      u_plane = Array.make (width / 2 * (height / 2)) 128;
      v_plane = Array.make (width / 2 * (height / 2)) 128;
    }
  in
  let frames = Array.init 4 (fun t -> Mv1.encode_frame ~width ~height ~quality:Mv1.quality (mk t)) in
  let packed = Mv1.pack { Mv1.width; height; fps = 30; frames } in
  let back = check_ok "unpack" (Mv1.unpack packed) in
  check_int "fps" 30 back.Mv1.fps;
  check_int "frames" 4 (Array.length back.Mv1.frames);
  ignore (check_err "bad dims rejected"
      (Mv1.unpack (Mv1.pack { Mv1.width = 30; height = 30; fps = 1; frames = [||] })))

let suite_codecs =
  ( "user.codecs",
    [
      deflate_stored_roundtrip;
      deflate_fixed_roundtrip;
      quick "fixed huffman code lengths" deflate_fixed_code_lengths;
      quick "deflate rejects garbage" deflate_rejects_garbage;
      quick "deflate resolves LZ77 back-references" deflate_backref_stream;
      lzw_roundtrip;
      quick "lzw compresses repetition" lzw_compresses_repetitive;
      lzw_small_alphabet;
      quick "adpcm tracks a sine (SNR)" adpcm_tracks_signal;
      quick "vogg container roundtrip" adpcm_container_roundtrip;
      yuv_roundtrip_tolerance;
      quick "simd yuv: same pixels, cheaper" yuv_simd_same_pixels;
      bmp_roundtrip;
      quick "bmp rejects bad input" bmp_rejects_bad;
      pnglite_roundtrip;
      quick "pnglite adler32 detects corruption" pnglite_checksum_detects_corruption;
      quick "giflite roundtrip" giflite_roundtrip;
      quick "mv1 psnr at q50" mv1_psnr;
      quick "mv1 container roundtrip" mv1_container_roundtrip;
    ] )

(* ---- crypto, against published vectors ---- *)

let sha256_vectors () =
  check_string "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex (Sha256.digest Bytes.empty));
  check_string "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex (Sha256.digest (Bytes.of_string "abc")));
  check_string "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex
       (Sha256.digest
          (Bytes.of_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))

let sha256_block_count () =
  let _, one = Sha256.digest_with_blocks (Bytes.make 10 'x') in
  let _, two = Sha256.digest_with_blocks (Bytes.make 60 'x') in
  check_int "one block" 1 one;
  check_int "padding spills" 2 two

let sha256_leading_zeros () =
  check_int "no zeros" 0 (Sha256.leading_zero_bits (Bytes.of_string "\x80rest"));
  check_int "one zero byte + msb set" 8
    (Sha256.leading_zero_bits (Bytes.of_string "\x00\x80rest"));
  check_int "12 bits" 12 (Sha256.leading_zero_bits (Bytes.of_string "\x00\x08rest"))

let md5_vectors () =
  check_string "empty" "d41d8cd98f00b204e9800998ecf8427e"
    (Md5.hex (Md5.digest Bytes.empty));
  check_string "abc" "900150983cd24fb0d6963f7d28e17f72"
    (Md5.hex (Md5.digest (Bytes.of_string "abc")));
  check_string "alphabet" "c3fcd3d76192e4007dfb496cca67e13b"
    (Md5.hex (Md5.digest (Bytes.of_string "abcdefghijklmnopqrstuvwxyz")))

let suite_crypto =
  ( "user.crypto",
    [
      quick "sha256 FIPS vectors" sha256_vectors;
      quick "sha256 block counting" sha256_block_count;
      quick "sha256 difficulty bits" sha256_leading_zeros;
      quick "md5 RFC vectors" md5_vectors;
    ] )

(* ---- gfx + events + minisdl against a live kernel ---- *)

let gfx_direct_rendering () =
  let kernel = boot_kernel () in
  (match
     Benchlib.Measure.run_task kernel ~name:"painter" (fun () ->
         let env = Uenv.create () in
         env.Uenv.e_fb <- kernel.Core.Kernel.fb;
         match Gfx.direct env with
         | Error e -> e
         | Ok gfx ->
             Gfx.fill gfx (Gfx.rgb 10 20 30);
             Gfx.put gfx ~x:5 ~y:5 0xffffff;
             Gfx.text gfx ~x:20 ~y:20 ~color:0x00ff00 "HI";
             Gfx.present gfx;
             0)
   with
  | Ok (0, _) -> ()
  | Ok (e, _) -> Alcotest.failf "painter failed: %d" e
  | Error e -> Alcotest.fail e);
  let fb = Option.get kernel.Core.Kernel.fb in
  check_int "pixel visible after present" 0xffffff
    (Hw.Framebuffer.display_pixel fb ~x:5 ~y:5);
  check_int "background" (Gfx.rgb 10 20 30) (Hw.Framebuffer.display_pixel fb ~x:600 ~y:400)

let event_encoding_roundtrip =
  qcheck "kbd event wire encoding roundtrip"
    QCheck.(triple (int_bound 255) bool (int_bound 255))
    (fun (code, pressed, mods) ->
      let ev =
        {
          Core.Kbd.ev_code = code;
          ev_pressed = pressed;
          ev_modifiers = mods;
          ev_ts_ns = 123_000L;
        }
      in
      let back = Core.Kbd.decode (Core.Kbd.encode ev) ~off:0 in
      back.Core.Kbd.ev_code = code
      && back.Core.Kbd.ev_pressed = pressed
      && back.Core.Kbd.ev_modifiers = mods
      && back.Core.Kbd.ev_ts_ns = 123_000L)

let key_mapping () =
  check_bool "arrows" true (Uevents.key_of_usage 0x52 = Uevents.Up);
  check_bool "enter" true (Uevents.key_of_usage 0x28 = Uevents.Enter);
  check_bool "letters" true (Uevents.key_of_usage 0x04 = Uevents.Char 'a');
  check_bool "digits" true (Uevents.key_of_usage 0x1e = Uevents.Char '1');
  check_bool "unknown" true (Uevents.key_of_usage 0xee = Uevents.Other 0xee)

let minisdl_audio_thread () =
  let kernel = boot_kernel () in
  (match
     Benchlib.Measure.run_task kernel ~name:"sdl-app" (fun () ->
         let env = Uenv.create () in
         env.Uenv.e_fb <- kernel.Core.Kernel.fb;
         match Minisdl.init env Minisdl.Fullscreen with
         | Error e -> e
         | Ok sdl ->
             let served = ref 0 in
             let callback n =
               served := !served + n;
               Array.init n (fun i -> (i * 13) land 0x3fff)
             in
             ignore (Minisdl.open_audio sdl callback);
             Minisdl.delay 400;
             Minisdl.quit sdl;
             if !served > 8192 then 0 else 1)
   with
  | Ok (0, _) -> ()
  | Ok (rc, _) -> Alcotest.failf "audio thread served too little (rc %d)" rc
  | Error e -> Alcotest.fail e);
  check_bool "samples flowed to the device" true
    (Hw.Pwm_audio.samples_played kernel.Core.Kernel.board.Hw.Board.pwm > 4096)

let suite_threads =
  ( "user.runtime",
    [
      quick "gfx direct rendering" gfx_direct_rendering;
      event_encoding_roundtrip;
      quick "hid key mapping" key_mapping;
      quick "minisdl audio thread streams" minisdl_audio_thread;
    ] )
