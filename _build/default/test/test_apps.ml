(** App tests: engine logic (pure) and integration runs on a booted
    Prototype 5 — every app must start, do its work, and leave evidence
    (frames, sound, console output, files). *)

open Tharness

(* ---- engine logic ---- *)

let mario_gravity_and_ground () =
  let st = Apps.Mario.fresh_state () in
  st.Apps.Mario.title <- false;
  (* jump and verify the arc comes back to ground *)
  Apps.Mario.step st { Apps.Mario.left = false; right = false; jump = true };
  check_bool "airborne after jump" false st.Apps.Mario.on_ground;
  let y_top = ref st.Apps.Mario.py in
  for _ = 1 to 120 do
    Apps.Mario.step st Apps.Mario.no_input;
    if st.Apps.Mario.py < !y_top then y_top := st.Apps.Mario.py
  done;
  check_bool "rose above start" true (!y_top < 160.0);
  check_bool "landed" true st.Apps.Mario.on_ground

let mario_autoplay_progresses () =
  let st = Apps.Mario.fresh_state () in
  st.Apps.Mario.title <- false;
  let x0 = st.Apps.Mario.px in
  for _ = 1 to 600 do
    Apps.Mario.step st (Apps.Mario.bot st)
  done;
  check_bool "bot moves right" true (st.Apps.Mario.px > x0 +. 100.0)

let mario_title_transitions () =
  let st = Apps.Mario.fresh_state () in
  check_bool "starts on title" true st.Apps.Mario.title;
  for _ = 1 to 121 do
    Apps.Mario.step st Apps.Mario.no_input
  done;
  check_bool "autoplay transition (par 4.3)" false st.Apps.Mario.title

let doom_raycast_hits_walls () =
  let st = Apps.Doom.fresh_state () in
  for i = 0 to 15 do
    let angle = float_of_int i *. 0.39 in
    let dist, texid, texx, steps, _side = Apps.Doom.cast st angle in
    check_bool "always hits (closed map)" true (texid >= 1);
    check_bool "distance positive" true (dist > 0.0);
    check_bool "distance bounded by map" true (dist < 34.0);
    check_bool "texture x in range" true (texx >= 0 && texx < 64);
    check_bool "steps sane" true (steps >= 1 && steps < 64)
  done

let doom_movement_respects_walls () =
  let st = Apps.Doom.fresh_state () in
  (* walk into the west wall; position must stay inside the map *)
  st.Apps.Doom.dir <- Float.pi;
  for _ = 1 to 500 do
    Apps.Doom.step st
      { Apps.Doom.forward = true; back = false; turn_l = false; turn_r = false; fire = false }
  done;
  check_bool "clamped by collision" true (st.Apps.Doom.px >= 1.0)

let doom_firing_kills_sprites () =
  let st = Apps.Doom.fresh_state () in
  (* aim at the first sprite and fire *)
  let s = st.Apps.Doom.sprites.(0) in
  st.Apps.Doom.dir <- atan2 (s.Apps.Doom.sy -. st.Apps.Doom.py) (s.Apps.Doom.sx -. st.Apps.Doom.px);
  let ammo0 = st.Apps.Doom.ammo in
  Apps.Doom.step st
    { Apps.Doom.forward = false; back = false; turn_l = false; turn_r = false; fire = true };
  check_bool "sprite died" false s.Apps.Doom.alive;
  check_int "ammo spent" (ammo0 - 1) st.Apps.Doom.ammo

let donut_renders_a_torus () =
  let lum, points = Apps.Donut.render_luminance ~cols:60 ~rows:24 ~a:0.3 ~b:0.7 in
  check_bool "many surface points" true (points > 20_000);
  let lit = Array.fold_left (fun acc l -> if l >= 0.0 then acc + 1 else acc) 0 lum in
  check_in_range "covered cells" 100.0 1200.0 (float_of_int lit);
  (* the text frame has visible structure *)
  let text = Apps.Donut.frame_to_text ~cols:60 ~rows:24 lum in
  check_bool "nonempty art" true (String.exists (fun c -> c <> ' ' && c <> '\n') text)

let donut_rotates () =
  let a, _ = Apps.Donut.render_luminance ~cols:40 ~rows:20 ~a:0.0 ~b:0.0 in
  let b, _ = Apps.Donut.render_luminance ~cols:40 ~rows:20 ~a:1.0 ~b:0.5 in
  check_bool "different angles differ" true (a <> b)

let suite_engines =
  ( "apps.engines",
    [
      quick "mario gravity and landing" mario_gravity_and_ground;
      quick "mario autoplay progresses" mario_autoplay_progresses;
      quick "mario title transition" mario_title_transitions;
      quick "doom raycast properties" doom_raycast_hits_walls;
      quick "doom wall collision" doom_movement_respects_walls;
      quick "doom hitscan" doom_firing_kills_sprites;
      quick "donut renders a torus" donut_renders_a_torus;
      quick "donut rotates" donut_rotates;
    ] )

(* ---- integration on a live prototype 5 ---- *)

let stage5 ?(seed = 9L) () = Proto.Stage.boot ~prototype:5 ~seed ()

let frames_of stage pid =
  Core.Sched.frames_presented stage.Proto.Stage.kernel.Core.Kernel.sched ~pid

let run_app_collect_frames ~prog ~argv ~seconds =
  let stage = stage5 () in
  let task = Proto.Stage.start stage prog argv in
  Proto.Stage.run_for stage (Sim.Engine.sec seconds);
  (stage, task, frames_of stage task.Core.Task.pid)

let doom_produces_frames () =
  (* the first ~4 s load the 3 MB WAD off the SD card *)
  let _, _, frames = run_app_collect_frames ~prog:"doom" ~argv:[ "doom"; "0" ] ~seconds:8 in
  check_bool "doom renders >40 FPS after loading" true (frames > 160)

let mario_variants_produce_frames () =
  List.iter
    (fun variant ->
      let _, _, frames =
        run_app_collect_frames ~prog:"mario" ~argv:[ "mario"; variant; "0" ] ~seconds:2
      in
      check_bool (variant ^ " renders") true (frames > 60))
    [ "noinput"; "proc"; "sdl" ]

let video_plays_at_native_rate () =
  let stage, task, _ =
    run_app_collect_frames ~prog:"video"
      ~argv:[ "video"; "/d/videos/clip480.mv1"; "0" ]
      ~seconds:4
  in
  let frames = frames_of stage task.Core.Task.pid in
  (* ~26-30 FPS after the initial load: at least 60 frames in 4s *)
  check_bool "video decodes and presents" true (frames > 60)

let music_fills_the_speaker () =
  let stage = stage5 () in
  ignore (Proto.Stage.start stage "music" [ "music"; "/d/music/track1.vogg"; "/d/music/cover1.pngl" ]);
  Proto.Stage.run_for stage (Sim.Engine.sec 4);
  let pwm = stage.Proto.Stage.kernel.Core.Kernel.board.Hw.Board.pwm in
  check_bool "audio streamed" true (Hw.Pwm_audio.samples_played pwm > 100_000);
  let out = Hw.Pwm_audio.recent_output pwm in
  check_bool "melody present" true (Array.exists (fun s -> abs s > 5000) out);
  (* once the pipeline is primed it must not starve *)
  let under0 = Hw.Pwm_audio.underruns pwm in
  Proto.Stage.run_for stage (Sim.Engine.sec 2);
  check_bool "no stutter mid-song" true (Hw.Pwm_audio.underruns pwm - under0 < 8)

let buzzer_beeps () =
  let stage = stage5 () in
  ignore (Proto.Stage.start stage "buzzer" [ "buzzer"; "880"; "800" ]);
  Proto.Stage.run_for stage (Sim.Engine.sec 1);
  let out = Hw.Pwm_audio.recent_output stage.Proto.Stage.kernel.Core.Kernel.board.Hw.Board.pwm in
  check_bool "square wave emitted" true
    (Array.exists (fun s -> s > 10_000) out && Array.exists (fun s -> s < -10_000) out)

let slider_shows_slides () =
  let stage = stage5 () in
  let task = Proto.Stage.start stage "slider" [ "slider"; "/d/slides"; "200"; "1" ] in
  Proto.Stage.run_for stage (Sim.Engine.sec 5);
  check_bool "presented at least one slide per file" true
    (frames_of stage task.Core.Task.pid >= 2);
  check_string "exited cleanly" "zombie" (Core.Task.state_name task)

let blockchain_mines () =
  let stage = stage5 () in
  let task = Proto.Stage.start stage "blockchain" [ "blockchain"; "4"; "10"; "2" ] in
  Proto.Stage.run_for stage (Sim.Engine.sec 8);
  check_string "miner finished" "zombie" (Core.Task.state_name task);
  let out = Proto.Stage.uart stage in
  let has needle =
    let n = String.length needle and m = String.length out in
    let rec at i = i + n <= m && (String.equal (String.sub out i n) needle || at (i + 1)) in
    at 0
  in
  check_bool "blocks reported" true (has "block 1");
  check_bool "hash rate reported" true (has "kH/s")

let sysmon_floats_on_top () =
  let stage = stage5 () in
  ignore (Proto.Stage.start stage "mario" [ "mario"; "sdl"; "0" ]);
  Proto.Stage.run_for stage (Sim.Engine.sec 1);
  ignore (Proto.Stage.start stage "sysmon" [ "sysmon"; "3" ]);
  Proto.Stage.run_for stage (Sim.Engine.sec 2);
  let wm = Option.get stage.Proto.Stage.kernel.Core.Kernel.wm in
  check_int "two windows" 2 (Core.Wm.surface_count wm);
  (* sysmon's surface is translucent and always-on-top *)
  let translucent =
    Hashtbl.fold
      (fun _ s acc -> acc || (s.Core.Wm.alpha < 255 && s.Core.Wm.always_on_top))
      wm.Core.Wm.surfaces false
  in
  check_bool "translucent overlay" true translucent

let shell_runs_scripts () =
  let stage = stage5 () in
  ignore (Proto.Stage.start stage "sh" [ "sh"; "/scripts/demo.sh" ]);
  Proto.Stage.run_for stage (Sim.Engine.sec 5);
  let out = Proto.Stage.uart stage in
  let has needle =
    let n = String.length needle and m = String.length out in
    let rec at i = i + n <= m && (String.equal (String.sub out i n) needle || at (i + 1)) in
    at 0
  in
  check_bool "echo ran" true (has "demo script");
  check_bool "uptime ran" true (has "up ");
  check_bool "ls ran (sees programs)" true (has "doom")

let shell_interactive () =
  let stage = stage5 () in
  let kernel = stage.Proto.Stage.kernel in
  ignore (Proto.Stage.start stage "sh" [ "sh" ]);
  Proto.Stage.run_for stage (Sim.Engine.sec 1);
  Hw.Uart.inject_string kernel.Core.Kernel.board.Hw.Board.uart "echo one; echo two\n";
  Proto.Stage.run_for stage (Sim.Engine.sec 2);
  Hw.Uart.inject_string kernel.Core.Kernel.board.Hw.Board.uart "cat /scripts/demo.sh\n";
  Proto.Stage.run_for stage (Sim.Engine.sec 2);
  let out = Proto.Stage.uart stage in
  let has needle =
    let n = String.length needle and m = String.length out in
    let rec at i = i + n <= m && (String.equal (String.sub out i n) needle || at (i + 1)) in
    at 0
  in
  check_bool "prompt shown" true (has "vos$ ");
  check_bool "sequence ran" true (has "one" && has "two");
  check_bool "cat works" true (has "demo script")

let utils_work () =
  let stage = stage5 () in
  let kernel = stage.Proto.Stage.kernel in
  ignore (Proto.Stage.start stage "sh" [ "sh" ]);
  Proto.Stage.run_for stage (Sim.Engine.sec 1);
  let type_line l =
    Hw.Uart.inject_string kernel.Core.Kernel.board.Hw.Board.uart (l ^ "\n");
    Proto.Stage.run_for stage (Sim.Engine.sec 2)
  in
  type_line "mkdir /tmp";
  type_line "echo written by echo";
  type_line "wc /scripts/demo.sh";
  type_line "grep demo /scripts/demo.sh";
  type_line "ps";
  let out = Proto.Stage.uart stage in
  let has needle =
    let n = String.length needle and m = String.length out in
    let rec at i = i + n <= m && (String.equal (String.sub out i n) needle || at (i + 1)) in
    at 0
  in
  check_bool "echo output" true (has "written by echo");
  check_bool "wc counts" true (has "/scripts/demo.sh");
  check_bool "grep matches" true (has "echo demo script");
  check_bool "ps lists shell" true (has "sh")

let doom_loads_wad_from_fat () =
  let stage = stage5 () in
  let sd = stage.Proto.Stage.kernel.Core.Kernel.board.Hw.Board.sd in
  let reads0 = Hw.Sd.read_count sd in
  ignore (Proto.Stage.start stage "doom" [ "doom"; "60" ]);
  Proto.Stage.run_for stage (Sim.Engine.sec 8);
  (* the 3 MB WAD must have come off the SD card in ranged commands:
     far fewer commands than sectors *)
  let reads = Hw.Sd.read_count sd - reads0 in
  check_bool "ranged reads" true (reads > 0 && reads < 2000)

let suite_integration =
  ( "apps.integration",
    [
      slow "doom produces frames" doom_produces_frames;
      slow "mario variants render" mario_variants_produce_frames;
      slow "video plays" video_plays_at_native_rate;
      slow "music fills the speaker" music_fills_the_speaker;
      slow "buzzer beeps" buzzer_beeps;
      slow "slider shows slides" slider_shows_slides;
      slow "blockchain mines" blockchain_mines;
      slow "sysmon floats on top" sysmon_floats_on_top;
      slow "shell runs scripts" shell_runs_scripts;
      slow "shell interactive" shell_interactive;
      slow "console utilities" utils_work;
      slow "doom WAD load uses FAT range IO" doom_loads_wad_from_fat;
    ] )
