test/test_kernel.ml: Alcotest Array Benchlib Bytes Core Gfx Hw Int64 List Option Printf Result Sim String Tharness Uevents User Usys Uthread
