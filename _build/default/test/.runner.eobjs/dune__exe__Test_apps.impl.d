test/test_apps.ml: Apps Array Core Float Hashtbl Hw List Option Proto Sim String Tharness
