test/tharness.ml: Alcotest Benchlib Core Float Hw QCheck QCheck_alcotest Sim
