test/test_hw.ml: Alcotest Array Bytes Float Hw Int64 List Printf QCheck Sim String Tharness
