test/test_fs.ml: Array Bytes Char Fs Gen Int64 List Printf QCheck Result Sim String Tharness
