test/test_ext.ml: Adpcm Alcotest Array Benchlib Bytes Char Core Fs Gen Gfx Hw Int64 List Mv1 Option Printf Proto QCheck Result Sim String Tharness Uenv User Usys
