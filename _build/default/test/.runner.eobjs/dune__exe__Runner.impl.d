test/runner.ml: Alcotest Test_apps Test_ext Test_fs Test_hw Test_kernel Test_proto Test_sim Test_user
