test/test_proto.ml: Alcotest Array Benchlib Bytes Core Hw List Option Printf Proto Sim String Tharness User
