test/test_sim.ml: Alcotest Float Gen Int64 List Printf QCheck Sim String Tharness
