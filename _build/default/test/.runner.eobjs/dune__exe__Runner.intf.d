test/runner.mli:
