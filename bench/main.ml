(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index).

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe table4     -- one experiment
     dune exec bench/main.exe bechamel   -- Bechamel micro-measurements of
                                            each experiment's hot kernel

   Paper-reported values are printed alongside for comparison;
   EXPERIMENTS.md records a full run with commentary. *)

let section title = Printf.printf "\n=== %s ===\n%!" title

let table1 () =
  section "Table 1: prototype feature matrix";
  print_string (Proto.Matrix.render ());
  let violations = Proto.Matrix.validate () in
  if violations = [] then
    print_endline
      "validation: OK (deps satisfied, monotone growth, all features motivated)"
  else
    List.iter
      (fun v -> print_endline ("VIOLATION: " ^ Proto.Matrix.describe_violation v))
      violations

let fig7 () =
  section "Figure 7: source code analysis";
  print_string (Proto.Sloc.render (Proto.Sloc.analyze ()));
  print_endline
    "paper: kernel 2.5K (P1) -> ~33K (P5) SLoC, core 1K -> 8K; apps 260 -> 76K"

let fig8 () =
  section "Figure 8: kernel microbenchmarks";
  print_string (Benchlib.Figures.render_fig8 (Benchlib.Figures.fig8 ()));
  print_endline
    "paper: syscall ~3us; IPC ~21us; FAT32 several hundred KB/s; ~6s to shell"

let fig9 () =
  section "Figure 9: OS microbenchmark comparison";
  print_string (Benchlib.Figures.render_fig9 (Benchlib.Figures.fig9 ()));
  print_endline
    "paper: ours lower than xv6 on most; within 0.5x-2x of Linux/FreeBSD;";
  print_endline "       fork much slower than production (eager page copy)"

let table4 () =
  section "Table 4: app throughput (FPS)";
  print_string (Benchlib.Appbench.render (Benchlib.Appbench.run ()));
  print_endline
    "paper pi3/ours: DOOM 61.8, video480 26.7, video720 11.6, mario-noinput";
  print_endline
    "       108.1, mario-proc 114.7, mario-sdl 72.2; linux DOOM 31.9, freebsd 51.2"

let fig10 () =
  section "Figure 10: multicore scalability";
  print_string (Benchlib.Scale.render (Benchlib.Scale.run ~seed:42L ()));
  print_endline "paper: proportional growth to 4 cores, >95% core utilization"

let fig11 () =
  section "Figure 11: latency breakdowns";
  print_string
    (Benchlib.Latency.render
       (Benchlib.Latency.render_all (), Benchlib.Latency.input_all ()));
  print_endline
    "paper: app logic dominates rendering; input latency 1-2 frames, polling";
  print_endline "       dominates; pipe/WM indirection visible for mario-proc/sdl"

let mem () =
  section "Memory consumption (sec. 6.3)";
  print_string (Benchlib.Memuse.render (Benchlib.Memuse.run ()));
  print_endline "paper: 21-42 MB total OS memory (2-4% of 1 GB)"

let fig12 () =
  section "Figure 12: power and battery life";
  print_string (Benchlib.Powerbench.render (Benchlib.Powerbench.run ()));
  print_endline "paper: ~3 W at shell (3.7 h battery), ~4 W under load (~2.6 h)"

let iobench () =
  section "iobench: write-back / read-ahead / coalescing ablation";
  let rows = Benchlib.Iobench.run () in
  print_string (Benchlib.Iobench.render rows);
  let jrows = Benchlib.Iobench.run_journal () in
  print_string (Benchlib.Iobench.render_journal jrows);
  Benchlib.Iobench.write_json ~journal:jrows rows "BENCH_io.json";
  print_endline "wrote BENCH_io.json"

let schedbench () =
  section "schedbench: scheduling class / wake model / affinity ablation";
  let rows = Benchlib.Schedbench.run () in
  print_string (Benchlib.Schedbench.render rows);
  Benchlib.Schedbench.write_json rows "BENCH_sched.json";
  print_endline "wrote BENCH_sched.json"

let ipcbench () =
  section "ipcbench: pipe ring / edge wakeup / poll ablation";
  let rows = Benchlib.Ipcbench.run () in
  print_string (Benchlib.Ipcbench.render rows);
  Benchlib.Ipcbench.write_json rows "BENCH_ipc.json";
  print_endline "wrote BENCH_ipc.json"

let tracebench () =
  section "tracebench: kperf emit cost + span-derived input breakdown";
  let r = Benchlib.Tracebench.run () in
  print_string (Benchlib.Tracebench.render r);
  Benchlib.Tracebench.write_json r "BENCH_trace.json";
  Benchlib.Tracebench.write_trace r "BENCH_trace.ktrace";
  print_endline "wrote BENCH_trace.json and BENCH_trace.ktrace"

let crashbench () =
  section "crashbench: randomized power-cut crash injection on the journal";
  let s = Benchlib.Crashbench.run () in
  print_string (Benchlib.Crashbench.render s);
  Benchlib.Crashbench.write_json s "BENCH_crash.json";
  print_endline "wrote BENCH_crash.json";
  if s.Benchlib.Crashbench.s_fsck_failures > 0
     || s.Benchlib.Crashbench.s_invariant_failures > 0
  then exit 1

let fuzzbench () =
  section "fuzzbench: scenario-fuzzer throughput, cleanliness, shrink cost";
  let s = Benchlib.Fuzzbench.run () in
  print_string (Benchlib.Fuzzbench.render s);
  Benchlib.Fuzzbench.write_json s "BENCH_fuzz.json";
  print_endline "wrote BENCH_fuzz.json";
  if s.Benchlib.Fuzzbench.f_failures > 0 then exit 1

let lintbench () =
  section "lintbench: vlint + vrace wall cost and coverage";
  let r = Benchlib.Lintbench.run () in
  print_string (Benchlib.Lintbench.render r);
  Benchlib.Lintbench.write_json r "BENCH_lint.json";
  print_endline "wrote BENCH_lint.json";
  if not (Benchlib.Lintbench.clean r) then exit 1

let obsbench () =
  section "obsbench: vprobe site cost, armed-vs-stock identity, delay accounting";
  let r = Benchlib.Obsbench.run () in
  print_string (Benchlib.Obsbench.render r);
  Benchlib.Obsbench.write_json r "BENCH_obs.json";
  print_endline "wrote BENCH_obs.json";
  if not (Benchlib.Obsbench.clean r) then exit 1

let simbench () =
  section "simbench: host-parallel engine — pop cost, speedup, determinism";
  let r = Benchlib.Simbench.run () in
  print_string (Benchlib.Simbench.render r);
  Benchlib.Simbench.write_json r "BENCH_sim.json";
  print_endline "wrote BENCH_sim.json"

let ablations () =
  section "Ablations: the design choices DESIGN.md calls out";
  print_string (Benchlib.Ablation.render (Benchlib.Ablation.run ()))

let fig13 () =
  section "Figure 13: pedagogical survey (synthetic respondent model)";
  print_string (Benchlib.Survey.render (Benchlib.Survey.run ~seed:48L ()))

let experiments =
  [
    ("table1", table1);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("table4", table4);
    ("fig10", fig10);
    ("fig11", fig11);
    ("mem", mem);
    ("fig12", fig12);
    ("fig13", fig13);
    ("ablations", ablations);
    ("iobench", iobench);
    ("schedbench", schedbench);
    ("ipcbench", ipcbench);
    ("tracebench", tracebench);
    ("obsbench", obsbench);
    ("simbench", simbench);
    ("crashbench", crashbench);
    ("fuzzbench", fuzzbench);
    ("lintbench", lintbench);
  ]

(* ---- Bechamel: one Test.make per table/figure, timing that
   experiment's hot kernel with the real measurement machinery ---- *)

let bechamel_tests () =
  let open Bechamel in
  let payload = Bytes.make 4096 's' in
  let fat =
    lazy
      (let dev, _ = Fs.Blockdev.ramdisk ~name:"bench" ~sectors:65536 in
       let io = Fs.Fat32.io_of_blockdev dev in
       Fs.Fat32.mkfs io ~total_sectors:65536 ();
       let fat = Result.get_ok (Fs.Fat32.mount io) in
       (match Fs.Fat32.create fat "/x.dat" with Ok () -> () | Error e -> invalid_arg e);
       ignore
         (Result.get_ok
            (Fs.Fat32.write_file fat "/x.dat" ~off:0 ~data:(Bytes.make 65536 'x')));
       fat)
  in
  [
    Test.make ~name:"table1.matrix-validate"
      (Staged.stage (fun () -> ignore (Proto.Matrix.validate ())));
    Test.make ~name:"fig7.sloc-analyze"
      (Staged.stage (fun () -> ignore (Proto.Sloc.analyze ())));
    Test.make ~name:"fig8.engine-event"
      (Staged.stage (fun () ->
           let e = Sim.Engine.create () in
           ignore (Sim.Engine.schedule_after e 10L (fun () -> ()));
           ignore (Sim.Engine.step e)));
    Test.make ~name:"fig9.md5-4k"
      (Staged.stage (fun () -> ignore (User.Md5.digest payload)));
    Test.make ~name:"table4.doom-raycast"
      (Staged.stage
         (let st = Apps.Doom.fresh_state () in
          fun () -> ignore (Apps.Doom.cast st 0.5)));
    Test.make ~name:"fig10.sha256-4k"
      (Staged.stage (fun () -> ignore (User.Sha256.digest payload)));
    Test.make ~name:"fig11.trace-emit"
      (Staged.stage
         (let tr = Core.Ktrace.create ~capacity:1024 () in
          fun () -> Core.Ktrace.emit tr ~ts_ns:0L ~core:0 Core.Ktrace.Kbd_report));
    Test.make ~name:"mem.kalloc-cycle"
      (Staged.stage
         (let k =
            Core.Kalloc.create ~dram_bytes:(64 * 1024 * 1024)
              ~kernel_reserved_bytes:0
          in
          fun () ->
            match Core.Kalloc.alloc_page k ~owner:"bench" with
            | Some f -> Core.Kalloc.free_page k f
            | None -> ()));
    Test.make ~name:"fig12.power-model"
      (Staged.stage (fun () ->
           ignore
             (Hw.Power.total_power Hw.Power.pi3_game_hat ~busy_cores:2.5
                ~io_fraction:0.2 ~hat:true)));
    Test.make ~name:"fig13.survey-sample"
      (Staged.stage (fun () -> ignore (Benchlib.Survey.run ~seed:7L ())));
    Test.make ~name:"fig8.fat32-range-read"
      (Staged.stage (fun () ->
           ignore
             (Result.get_ok
                (Fs.Fat32.read_file (Lazy.force fat) "/x.dat" ~off:0 ~len:65536))));
  ]

let run_bechamel () =
  let open Bechamel in
  section "Bechamel micro-measurements (ns per run)";
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.2) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let grouped = Test.make_grouped ~name:"vos" [ test ] in
      let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some (t :: _) -> Printf.printf "  %-32s %12.1f ns/run\n%!" name t
          | Some [] | None -> Printf.printf "  %-32s (no estimate)\n%!" name)
        results)
    (bechamel_tests ())

let () =
  match Sys.argv with
  | [| _ |] ->
      List.iter (fun (_, f) -> f ()) experiments;
      print_endline "\nall experiments complete"
  | [| _; "bechamel" |] -> run_bechamel ()
  | [| _; name |] -> (
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s; available: %s bechamel\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
  | _ ->
      Printf.eprintf "usage: main.exe [experiment|bechamel]\n";
      exit 1
